//! Async SLO-aware ingress: the fleet's concurrent front door.
//!
//! [`ShardedScheduler::serve`] consumes a pre-collected slice — fine
//! for replaying a trace, wrong for a service: a real deployment
//! ingests an unbounded concurrent stream, and *something* must bound
//! queue growth, keep one noisy tenant from starving the rest, and
//! shed work under overload instead of queueing it into latency
//! heat-death. This module is that something:
//!
//! * **MPMC ingestion** — producers on any number of threads submit
//!   through cloneable [`IngressHandle`]s into one bounded channel
//!   (the crossbeam shim's MPMC queue); a single dispatcher thread
//!   owns the scheduler and drains the channel in chunks, so the
//!   scheduler's deterministic plan/execute waves stay single-writer.
//! * **Per-tenant admission** — each tenant may hold at most
//!   [`TenantQuota::max_queued`] requests in the queue; excess arrivals
//!   are shed with [`ShedReason::TenantQuota`] *at submit time*, so a
//!   hot tenant's overflow never costs queue capacity.
//! * **Priority classes** — [`Priority::Interactive`] blocks on a full
//!   queue (backpressure, never queue-shed), [`Priority::Standard`]
//!   sheds when the queue is full, and [`Priority::Batch`] sheds as
//!   soon as the queue passes its headroom mark — overload evicts
//!   batch work first and interactive work last. The priority also
//!   becomes the request's scheduling class, so the scheduler never
//!   coalesces across classes.
//! * **Deadlines** — a request may carry a deadline; if it is still
//!   queued when its deadline passes, the dispatcher sheds it with
//!   [`ShedReason::DeadlineExpired`] instead of burning device time on
//!   an answer nobody is waiting for.
//! * **Typed shedding, never silent drops** — every submitted request
//!   ends up in exactly one of `served` or one shed counter;
//!   [`IngressReport::accounted`] checks the invariant
//!   `submitted == served + shed`.
//! * **Tail-latency telemetry** — per-class end-to-end latency
//!   (submit to chunk completion, wall clock) lands in lock-free
//!   [`LatencyHistogram`]s; the report carries p50/p99 per class.
//!
//! Pair the scheduler's shards with
//! [`crate::TuningPipeline::device_bounded_executor`] so the decision
//! caches behind the ingress are capacity-bounded and Bloom-admitted:
//! millions of distinct shapes then cost bounded memory
//! (`tests/ingress_serving.rs` and the `micro_ingress` bench pin
//! this).

use crate::cache::LatencyHistogram;
use crate::persist::{RestoreOutcome, Snapshot, SnapshotterConfig};
use crate::sched::{GemmRequest, ShardedScheduler};
use crate::{CoreError, Result};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Number of priority classes.
pub const PRIORITY_CLASSES: usize = 3;

/// A request's service class, from most to least latency-sensitive.
/// Doubles as the scheduler's coalescing class, so batches never mix
/// priorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// User-facing traffic: blocks on a full queue (backpressure) and
    /// is only ever shed by tenant quota or deadline.
    Interactive,
    /// Default traffic: shed when the queue is full.
    Standard,
    /// Best-effort traffic: shed as soon as the queue passes the
    /// configured headroom mark, so overload evicts batch work first.
    Batch,
}

impl Priority {
    /// Every priority, in class order.
    pub const ALL: [Priority; PRIORITY_CLASSES] =
        [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// The scheduling class this priority maps to (0, 1, 2).
    pub fn class(self) -> u16 {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }

    fn index(self) -> usize {
        self.class() as usize
    }
}

/// Why a request was shed. Every shed is typed and counted — the
/// ingress never drops silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant already holds its full queue quota.
    TenantQuota,
    /// No queue capacity for this priority class.
    QueueFull,
    /// The deadline passed while the request was queued (or already at
    /// submit).
    DeadlineExpired,
    /// The ingress was draining for shutdown and the drain deadline
    /// passed before this request reached a device.
    Shutdown,
}

/// What `submit` did with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued for dispatch.
    Enqueued,
    /// Rejected, with the reason (already counted in the telemetry).
    Shed(ShedReason),
}

impl SubmitOutcome {
    /// Whether the request made it into the queue.
    pub fn is_enqueued(&self) -> bool {
        matches!(self, SubmitOutcome::Enqueued)
    }
}

/// Per-tenant admission bound.
#[derive(Debug, Clone, Copy)]
pub struct TenantQuota {
    /// Maximum requests one tenant may hold in the ingress queue at
    /// once (clamped to ≥ 1). Arrivals beyond it shed with
    /// [`ShedReason::TenantQuota`].
    pub max_queued: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota { max_queued: 1024 }
    }
}

/// Ingress knobs.
#[derive(Debug, Clone, Copy)]
pub struct IngressConfig {
    /// Bounded channel capacity between producers and the dispatcher
    /// (clamped to ≥ 1).
    pub queue_capacity: usize,
    /// Maximum requests the dispatcher hands the scheduler per chunk
    /// (clamped to ≥ 1). Larger chunks coalesce better; smaller chunks
    /// bound per-request queueing delay.
    pub dispatch_chunk: usize,
    /// Admission bound applied to every tenant.
    pub tenant_quota: TenantQuota,
    /// Fraction of the queue that must still be *free* for
    /// [`Priority::Batch`] work to be admitted (in `[0, 1]`; 0 accepts
    /// batch work until the queue is full).
    pub batch_headroom: f64,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            queue_capacity: 4096,
            dispatch_chunk: 1024,
            tenant_quota: TenantQuota::default(),
            batch_headroom: 0.5,
        }
    }
}

/// One ingress submission: the GEMM request plus its service metadata.
#[derive(Clone)]
pub struct IngressRequest {
    /// The underlying GEMM request (its `class` field is overwritten
    /// from `priority` at submit).
    pub request: GemmRequest,
    /// The submitting tenant.
    pub tenant: u32,
    /// Service class.
    pub priority: Priority,
    /// Optional completion deadline.
    pub deadline: Option<Instant>,
}

impl IngressRequest {
    /// A standard-priority request for tenant 0 with no deadline.
    pub fn new(request: GemmRequest) -> Self {
        IngressRequest {
            request,
            tenant: 0,
            priority: Priority::Standard,
            deadline: None,
        }
    }

    /// The same request for a different tenant.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// The same request in a different service class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The same request with a deadline `d` from now.
    pub fn with_deadline_in(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }
}

/// A queued request plus its service metadata and submit stamp.
struct Envelope {
    request: GemmRequest,
    tenant: u32,
    priority: Priority,
    deadline: Option<Instant>,
    submitted: Instant,
}

/// Telemetry shared by producers and the dispatcher. All counters are
/// monotone; the accounting invariant only settles once producers stop.
struct Shared {
    submitted: AtomicU64,
    enqueued: AtomicU64,
    served: AtomicU64,
    shed_tenant: AtomicU64,
    shed_queue: AtomicU64,
    shed_deadline: AtomicU64,
    class_submitted: [AtomicU64; PRIORITY_CLASSES],
    class_served: [AtomicU64; PRIORITY_CLASSES],
    class_shed: [AtomicU64; PRIORITY_CLASSES],
    latency: [LatencyHistogram; PRIORITY_CLASSES],
    /// Requests currently queued, per tenant.
    tenants: Mutex<HashMap<u32, usize>>,
    shed_shutdown: AtomicU64,
    snapshots_written: AtomicU64,
    snapshot_errors: AtomicU64,
    /// Set by [`IngressHandle::shutdown`]: once this instant passes,
    /// the dispatcher sheds dequeued work instead of serving it. `None`
    /// means no drain in progress (or an unbounded drain).
    drain_deadline: Mutex<Option<Instant>>,
}

impl Shared {
    fn new() -> Self {
        Shared {
            submitted: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed_tenant: AtomicU64::new(0),
            shed_queue: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            class_submitted: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            class_served: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            class_shed: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            latency: [
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
            ],
            tenants: Mutex::new(HashMap::new()),
            shed_shutdown: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            snapshot_errors: AtomicU64::new(0),
            drain_deadline: Mutex::new(None),
        }
    }

    fn bump(counters: &[AtomicU64; PRIORITY_CLASSES], priority: Priority) {
        if let Some(c) = counters.get(priority.index()) {
            c.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
        }
    }

    fn shed(&self, priority: Priority, reason: ShedReason) -> SubmitOutcome {
        match reason {
            ShedReason::TenantQuota => self.shed_tenant.fetch_add(1, Ordering::Relaxed), // atomic:role(counter)
            ShedReason::QueueFull => self.shed_queue.fetch_add(1, Ordering::Relaxed), // atomic:role(counter)
            ShedReason::DeadlineExpired => self.shed_deadline.fetch_add(1, Ordering::Relaxed), // atomic:role(counter)
            ShedReason::Shutdown => self.shed_shutdown.fetch_add(1, Ordering::Relaxed), // atomic:role(counter)
        };
        Self::bump(&self.class_shed, priority);
        SubmitOutcome::Shed(reason)
    }

    /// Release one queue slot held by `tenant`.
    fn release_tenant(&self, tenant: u32) {
        let mut tenants = self.tenants.lock();
        if let Some(count) = tenants.get_mut(&tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                tenants.remove(&tenant);
            }
        }
    }
}

/// Per-class slice of an [`IngressReport`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ClassReport {
    /// The class index (0 = interactive, 1 = standard, 2 = batch).
    pub class: u64,
    /// Requests submitted in this class.
    pub submitted: u64,
    /// Requests served in this class.
    pub served: u64,
    /// Requests shed in this class (all reasons).
    pub shed: u64,
    /// Median end-to-end latency, nanoseconds (0 with no samples).
    pub p50_ns: f64,
    /// 99th-percentile end-to-end latency, nanoseconds.
    pub p99_ns: f64,
}

/// A snapshot of the ingress accounting. Taken live it lags in-flight
/// work; after [`Ingress::finish`] it is exact and
/// [`IngressReport::accounted`] must hold.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct IngressReport {
    /// Requests presented to `submit`.
    pub submitted: u64,
    /// Requests that entered the queue.
    pub enqueued: u64,
    /// Requests the fleet completed.
    pub served: u64,
    /// Requests shed by tenant quota.
    pub shed_tenant_quota: u64,
    /// Requests shed by queue pressure.
    pub shed_queue_full: u64,
    /// Requests shed because their deadline expired in the queue.
    pub shed_deadline: u64,
    /// Requests shed because the drain deadline passed during
    /// shutdown.
    pub shed_shutdown: u64,
    /// Snapshots the background snapshotter persisted (0 unless the
    /// ingress was started with a [`SnapshotterConfig`]).
    pub snapshots_written: u64,
    /// Snapshot writes that failed (the stream keeps serving; the
    /// previous on-disk snapshot stays intact).
    pub snapshot_errors: u64,
    /// Per-class accounting and tail latency.
    pub classes: Vec<ClassReport>,
    /// Scheduler waves executed by the dispatcher (0 until `finish`).
    pub waves: u64,
    /// Whether the fleet ever degraded to a revived shard's
    /// reference path (false until `finish`).
    pub fleet_degraded: bool,
}

impl IngressReport {
    /// Total shed requests, all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_tenant_quota + self.shed_queue_full + self.shed_deadline + self.shed_shutdown
    }

    /// The zero-silent-drop invariant: every submitted request was
    /// served or shed. Only guaranteed after [`Ingress::finish`].
    pub fn accounted(&self) -> bool {
        self.submitted == self.served + self.shed_total()
    }
}

/// A cloneable producer handle: submit from any thread.
#[derive(Clone)]
pub struct IngressHandle {
    sender: Sender<Envelope>,
    shared: Arc<Shared>,
    config: IngressConfig,
}

impl IngressHandle {
    /// Submit one request. Returns the typed outcome; `Err` only for a
    /// closed ingress (the dispatcher is gone), which is a structural
    /// misuse, not load.
    pub fn submit(&self, request: IngressRequest) -> Result<SubmitOutcome> {
        let shared = &self.shared;
        shared.submitted.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
        Shared::bump(&shared.class_submitted, request.priority);

        let now = Instant::now();
        if request.deadline.is_some_and(|d| d <= now) {
            return Ok(shared.shed(request.priority, ShedReason::DeadlineExpired));
        }

        // Tenant admission: check-and-hold one queue slot. Released by
        // the dispatcher on dequeue, or below on a queue shed.
        let quota = self.config.tenant_quota.max_queued.max(1);
        {
            let mut tenants = shared.tenants.lock();
            let count = tenants.entry(request.tenant).or_insert(0);
            if *count >= quota {
                drop(tenants);
                return Ok(shared.shed(request.priority, ShedReason::TenantQuota));
            }
            *count += 1;
        }

        // Priority-tiered queue admission: batch work needs headroom,
        // standard work needs a slot, interactive work waits for one.
        if request.priority == Priority::Batch {
            let capacity = self.sender.capacity().max(1);
            let headroom = self.config.batch_headroom.clamp(0.0, 1.0);
            let admit_below = capacity.saturating_sub((capacity as f64 * headroom) as usize);
            if self.sender.len() >= admit_below.max(1) {
                shared.release_tenant(request.tenant);
                return Ok(shared.shed(request.priority, ShedReason::QueueFull));
            }
        }

        let mut request = request;
        request.request.class = request.priority.class();
        let tenant = request.tenant;
        let priority = request.priority;
        let envelope = Envelope {
            request: request.request,
            tenant,
            priority,
            deadline: request.deadline,
            submitted: now,
        };

        let sent = if priority == Priority::Interactive {
            self.sender.send(envelope).map_err(|_| ())
        } else {
            match self.sender.try_send(envelope) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => {
                    shared.release_tenant(tenant);
                    return Ok(shared.shed(priority, ShedReason::QueueFull));
                }
                Err(TrySendError::Disconnected(_)) => Err(()),
            }
        };
        match sent {
            Ok(()) => {
                shared.enqueued.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
                Ok(SubmitOutcome::Enqueued)
            }
            Err(()) => {
                shared.release_tenant(tenant);
                Err(CoreError::Dataset(
                    "ingress is closed: the dispatcher has shut down".into(),
                ))
            }
        }
    }

    /// Begin a graceful drain: requests already queued keep being
    /// served until `deadline` from now; anything still queued after
    /// that is shed with [`ShedReason::Shutdown`] (typed, counted —
    /// never silently dropped). Callable from any handle clone; the
    /// accounting identity `submitted == served + shed` still holds at
    /// [`Ingress::finish`] / [`Ingress::shutdown`]. On the (theoretical)
    /// overflow of `Instant`, the drain is unbounded — everything
    /// queued is served.
    pub fn shutdown(&self, deadline: Duration) {
        *self.shared.drain_deadline.lock() = Instant::now().checked_add(deadline);
    }
}

/// The dispatcher-side background snapshotter: captures the fleet
/// every [`SnapshotterConfig::every_chunks`] served chunks and once
/// more on drain, writing atomically via [`Snapshot::save`]. A failed
/// write is counted and serving continues — the previous on-disk
/// snapshot stays valid.
struct Snapshotter {
    config: SnapshotterConfig,
    /// Sequence number stamped into the next snapshot (restored runs
    /// continue from the loaded snapshot's `seq + 1`).
    next_seq: u64,
    chunks: u64,
}

impl Snapshotter {
    fn write(&mut self, scheduler: &ShardedScheduler, shared: &Shared) {
        let snapshot = Snapshot::new(&self.config.device)
            .with_seq(self.next_seq)
            .capture_fleet(scheduler);
        match snapshot.save(&self.config.path) {
            Ok(()) => {
                self.next_seq = self.next_seq.saturating_add(1);
                shared.snapshots_written.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
            }
            Err(_) => {
                shared.snapshot_errors.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
            }
        }
    }

    fn after_chunk(&mut self, scheduler: &ShardedScheduler, shared: &Shared) {
        self.chunks += 1;
        if self.config.every_chunks > 0 && self.chunks.is_multiple_of(self.config.every_chunks) {
            self.write(scheduler, shared);
        }
    }
}

/// What the dispatcher thread hands back when the stream drains.
struct DispatchOutcome {
    scheduler: ShardedScheduler,
    waves: u64,
    fleet_degraded: bool,
}

/// The ingress service: owns the dispatcher thread and the primary
/// producer handle.
///
/// ```text
/// producers --IngressHandle::submit--> bounded MPMC --dispatcher--> ShardedScheduler
/// ```
///
/// Call [`Ingress::finish`] to close the primary handle, drain the
/// queue, and get the exact report plus the scheduler back. Any
/// cloned [`IngressHandle`]s must be dropped first, or `finish` waits
/// for them.
pub struct Ingress {
    handle: IngressHandle,
    shared: Arc<Shared>,
    worker: Option<JoinHandle<Result<DispatchOutcome>>>,
}

impl Ingress {
    /// Start the ingress over `scheduler`: spawns the dispatcher
    /// thread, which owns the scheduler until [`Ingress::finish`].
    pub fn start(scheduler: ShardedScheduler, config: IngressConfig) -> Self {
        Self::start_inner(scheduler, config, None)
    }

    /// [`Ingress::start`] with a background snapshotter: the dispatcher
    /// persists the fleet's learned state to `snapshots.path` every
    /// `snapshots.every_chunks` chunks (atomic temp-file + fsync +
    /// rename) and once more when the stream drains, so a crash costs
    /// at most one cadence of learning.
    pub fn start_with_snapshots(
        scheduler: ShardedScheduler,
        config: IngressConfig,
        snapshots: SnapshotterConfig,
    ) -> Self {
        let snapshotter = Snapshotter {
            config: snapshots,
            next_seq: 1,
            chunks: 0,
        };
        Self::start_inner(scheduler, config, Some(snapshotter))
    }

    /// Warm restart: load the last snapshot from `snapshots.path`,
    /// restore it into `scheduler` ([`Snapshot::restore_fleet`]
    /// semantics — corruption-tolerant, typed), and start serving with
    /// the snapshotter continuing from the restored sequence number.
    /// An unreadable or unusable snapshot degrades to a cold start with
    /// the typed reason in the returned [`RestoreOutcome`] — the
    /// ingress always starts.
    pub fn start_restored(
        mut scheduler: ShardedScheduler,
        config: IngressConfig,
        snapshots: SnapshotterConfig,
    ) -> (Self, RestoreOutcome) {
        let (outcome, next_seq) = match Snapshot::load(&snapshots.path) {
            Ok(snapshot) => {
                let outcome = snapshot.restore_fleet(&mut scheduler, &snapshots.device);
                (outcome, snapshot.seq.saturating_add(1))
            }
            Err(error) => (RestoreOutcome::ColdStart { error }, 1),
        };
        let snapshotter = Snapshotter {
            config: snapshots,
            next_seq,
            chunks: 0,
        };
        (
            Self::start_inner(scheduler, config, Some(snapshotter)),
            outcome,
        )
    }

    fn start_inner(
        scheduler: ShardedScheduler,
        config: IngressConfig,
        snapshotter: Option<Snapshotter>,
    ) -> Self {
        let shared = Arc::new(Shared::new());
        let (sender, receiver) = channel::bounded(config.queue_capacity.max(1));
        let worker_shared = Arc::clone(&shared);
        let chunk = config.dispatch_chunk.max(1);
        let worker = std::thread::spawn(move || {
            dispatch(scheduler, receiver, worker_shared, chunk, snapshotter)
        });
        Ingress {
            handle: IngressHandle {
                sender,
                shared: Arc::clone(&shared),
                config,
            },
            shared,
            worker: Some(worker),
        }
    }

    /// A cloneable producer handle for other threads.
    pub fn handle(&self) -> IngressHandle {
        self.handle.clone()
    }

    /// Submit on the primary handle (see [`IngressHandle::submit`]).
    pub fn submit(&self, request: IngressRequest) -> Result<SubmitOutcome> {
        self.handle.submit(request)
    }

    /// A live snapshot of the accounting. In-flight requests make
    /// `accounted` false here; use [`Ingress::finish`] for the exact
    /// report.
    pub fn report(&self) -> IngressReport {
        report_from(&self.shared, 0, false)
    }

    /// Replace the primary handle's sender with a disconnected dummy,
    /// dropping the real one — once every cloned handle is gone too,
    /// the dispatcher sees the channel close and drains.
    fn close_sender(&mut self) {
        let (closed, _) = channel::bounded(1);
        drop(std::mem::replace(&mut self.handle.sender, closed));
    }

    fn join_worker(&mut self) -> Result<(IngressReport, ShardedScheduler)> {
        let worker = self
            .worker
            .take()
            .ok_or_else(|| CoreError::Dataset("ingress finish called twice".into()))?;
        self.close_sender();
        let outcome = worker
            .join()
            .map_err(|_| CoreError::Dataset("ingress dispatcher thread died".into()))??;
        let report = report_from(&self.shared, outcome.waves, outcome.fleet_degraded);
        Ok((report, outcome.scheduler))
    }

    /// Close the primary handle, wait for the dispatcher to drain the
    /// queue, and return the exact report plus the scheduler.
    pub fn finish(mut self) -> Result<(IngressReport, ShardedScheduler)> {
        self.join_worker()
    }

    /// Graceful shutdown: serve what is already queued for up to
    /// `deadline`, shed the rest typed ([`ShedReason::Shutdown`]), take
    /// a final snapshot (when a snapshotter is configured), and join
    /// the dispatcher thread. The returned report is exact:
    /// `submitted == served + shed`.
    pub fn shutdown(mut self, deadline: Duration) -> Result<(IngressReport, ShardedScheduler)> {
        self.handle.shutdown(deadline);
        self.join_worker()
    }
}

impl Drop for Ingress {
    /// A dropped ingress no longer leaks its dispatcher thread: the
    /// primary sender is closed and the thread joined (once any cloned
    /// handles are gone). The report and scheduler are discarded — use
    /// [`Ingress::finish`] or [`Ingress::shutdown`] to keep them.
    fn drop(&mut self) {
        if self.worker.is_none() {
            return; // finish()/shutdown() already joined
        }
        self.close_sender();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn report_from(shared: &Shared, waves: u64, fleet_degraded: bool) -> IngressReport {
    let classes = Priority::ALL
        .iter()
        .map(|&p| {
            let i = p.index();
            let load = |c: &[AtomicU64; PRIORITY_CLASSES]| {
                c.get(i).map(|v| v.load(Ordering::Relaxed)).unwrap_or(0) // atomic:role(counter)
            };
            let (p50, p99) = shared
                .latency
                .get(i)
                .map(|h| (h.p50(), h.p99()))
                .unwrap_or((0.0, 0.0));
            ClassReport {
                class: i as u64,
                submitted: load(&shared.class_submitted),
                served: load(&shared.class_served),
                shed: load(&shared.class_shed),
                p50_ns: p50,
                p99_ns: p99,
            }
        })
        .collect();
    IngressReport {
        submitted: shared.submitted.load(Ordering::Relaxed), // atomic:role(counter)
        enqueued: shared.enqueued.load(Ordering::Relaxed),   // atomic:role(counter)
        served: shared.served.load(Ordering::Relaxed),       // atomic:role(counter)
        shed_tenant_quota: shared.shed_tenant.load(Ordering::Relaxed), // atomic:role(counter)
        shed_queue_full: shared.shed_queue.load(Ordering::Relaxed), // atomic:role(counter)
        shed_deadline: shared.shed_deadline.load(Ordering::Relaxed), // atomic:role(counter)
        shed_shutdown: shared.shed_shutdown.load(Ordering::Relaxed), // atomic:role(counter)
        snapshots_written: shared.snapshots_written.load(Ordering::Relaxed), // atomic:role(counter)
        snapshot_errors: shared.snapshot_errors.load(Ordering::Relaxed), // atomic:role(counter)
        classes,
        waves,
        fleet_degraded,
    }
}

/// The dispatcher loop: drain the channel in chunks, shed expired
/// deadlines (and everything past the drain deadline during shutdown),
/// serve the rest, record per-class latency, snapshot at the
/// configured cadence and once more on drain.
fn dispatch(
    mut scheduler: ShardedScheduler,
    receiver: Receiver<Envelope>,
    shared: Arc<Shared>,
    chunk_size: usize,
    mut snapshotter: Option<Snapshotter>,
) -> Result<DispatchOutcome> {
    let mut waves = 0u64;
    let mut fleet_degraded = false;
    // Block for each chunk head; every sender gone means we are done
    // once the buffer is drained (recv returns leftovers before
    // reporting disconnect).
    while let Ok(first) = receiver.recv() {
        let mut envelopes = Vec::with_capacity(chunk_size);
        envelopes.push(first);
        while envelopes.len() < chunk_size {
            match receiver.try_recv() {
                Ok(envelope) => envelopes.push(envelope),
                Err(_) => break,
            }
        }

        // Dequeued: release tenant slots, shed expired deadlines and —
        // when a graceful drain has run past its deadline — everything
        // else (typed as Shutdown, so the accounting identity holds).
        let now = Instant::now();
        let draining = shared.drain_deadline.lock().is_some_and(|d| d <= now);
        let mut kept: Vec<Envelope> = Vec::with_capacity(envelopes.len());
        for envelope in envelopes {
            shared.release_tenant(envelope.tenant);
            if draining {
                shared.shed(envelope.priority, ShedReason::Shutdown);
            } else if envelope.deadline.is_some_and(|d| d <= now) {
                shared.shed(envelope.priority, ShedReason::DeadlineExpired);
            } else {
                kept.push(envelope);
            }
        }
        if kept.is_empty() {
            continue;
        }

        let requests: Vec<GemmRequest> = kept.iter().map(|e| e.request.clone()).collect();
        let report = scheduler.serve(&requests)?;
        waves += report.waves as u64;
        fleet_degraded |= report.fleet_degraded;

        // Chunk-granular completion stamp: every request in the chunk
        // finished by now, and the histogram's log2 buckets absorb the
        // sub-chunk skew.
        let done = Instant::now();
        for envelope in &kept {
            let nanos = done
                .saturating_duration_since(envelope.submitted)
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            if let Some(h) = shared.latency.get(envelope.priority.index()) {
                h.record(nanos);
            }
            Shared::bump(&shared.class_served, envelope.priority);
        }
        shared
            .served
            .fetch_add(kept.len() as u64, Ordering::Relaxed); // atomic:role(counter)
        if let Some(snapshotter) = snapshotter.as_mut() {
            snapshotter.after_chunk(&scheduler, &shared);
        }
    }
    // Final snapshot on drain: shutdown never loses more learning than
    // the last chunk.
    if let Some(snapshotter) = snapshotter.as_mut() {
        snapshotter.write(&scheduler, &shared);
    }
    Ok(DispatchOutcome {
        scheduler,
        waves,
        fleet_degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokernel_gemm::GemmShape;

    #[test]
    fn priority_maps_to_distinct_classes() {
        let classes: Vec<u16> = Priority::ALL.iter().map(|p| p.class()).collect();
        assert_eq!(classes, vec![0, 1, 2]);
    }

    #[test]
    fn ingress_request_builder_sets_metadata() {
        let shape = GemmShape::new(8, 8, 8);
        let request = IngressRequest::new(GemmRequest::zeroed(shape))
            .with_tenant(7)
            .with_priority(Priority::Batch)
            .with_deadline_in(Duration::from_secs(3600));
        assert_eq!(request.tenant, 7);
        assert_eq!(request.priority, Priority::Batch);
        assert!(request.deadline.is_some());
    }

    #[test]
    fn report_accounting_identity_holds_when_empty() {
        let shared = Shared::new();
        let report = report_from(&shared, 0, false);
        assert!(report.accounted());
        assert_eq!(report.shed_total(), 0);
    }
}
