//! The end-to-end tuning pipeline: collect → split → prune → train →
//! evaluate → deploy, tying Sections II-IV together behind one call.

use crate::cache::{CachedSelector, SelectionTelemetry};
use crate::codegen::{emit_rust_source, CompiledTree};
use crate::dataset::{PerformanceDataset, StaticPruneStats};
use crate::evaluate;
use crate::online::{OnlineConfig, OnlineSelector};
use crate::prune::PruneMethod;
use crate::resilient::{ResilientExecutor, ResilientPolicy};
use crate::select::{Selector, SelectorKind};
use crate::{CoreError, Result};
use autokernel_analyze::{AnalyticalScorer, KernelSpaceAnalyzer, SpaceAnalysis};
use autokernel_gemm::{GemmShape, KernelConfig};
use autokernel_mlkit::model_selection::train_test_split;
use autokernel_sycl_sim::{DeviceSpec, Queue};
use std::sync::Arc;

/// Pipeline hyper-parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Maximum number of shipped kernel configurations.
    pub budget: usize,
    /// Pruning strategy (Figure 4 winner by default).
    pub prune: PruneMethod,
    /// Runtime classifier (the paper's deployment recommendation).
    pub selector: SelectorKind,
    /// Held-out fraction for evaluation (the paper uses 0.2 → 136/34).
    pub test_fraction: f64,
    /// Master seed: split, clustering restarts and ensembles derive
    /// from it.
    pub seed: u64,
    /// Pre-prune statically invalid configurations before benchmarking:
    /// the kernel-space analyzer proves which launches the runtime
    /// would reject, and the sweep never prices them (see
    /// [`TuningPipeline::prune_stats`]).
    pub static_prune: bool,
    /// Opt-in analytical pruning oracle: with `Some(n)`, the
    /// zero-benchmark [`AnalyticalScorer`] ranks the space per dataset
    /// shape and the sweep only prices configurations inside the union
    /// of the per-shape analytical top-`n` sets (plus everything the
    /// static analyzer already rejected). `None` (the default) prices
    /// the full launchable space — bit-identical to previous releases.
    pub analytical_prune: Option<usize>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            budget: 6,
            prune: PruneMethod::DecisionTree,
            selector: SelectorKind::DecisionTree,
            test_fraction: 0.2,
            seed: 42,
            static_prune: true,
            analytical_prune: None,
        }
    }
}

/// A fully-trained kernel-selection pipeline.
///
/// ```
/// use autokernel_core::{PipelineConfig, TuningPipeline};
/// use autokernel_gemm::GemmShape;
/// use autokernel_sycl_sim::DeviceSpec;
///
/// let shapes: Vec<_> = [(64, 64, 64), (512, 512, 512), (1, 4096, 1000),
///     (12544, 27, 64), (196, 2304, 256), (49, 960, 160), (784, 1152, 128),
///     (32, 4096, 4096), (2, 2048, 1000), (1024, 1024, 1024)]
///     .iter()
///     .map(|&(m, k, n)| (GemmShape::new(m, k, n), "demo".to_string()))
///     .collect();
/// let pipeline = TuningPipeline::run(
///     &DeviceSpec::amd_r9_nano(), &shapes, PipelineConfig::default(),
/// ).unwrap();
/// assert!(!pipeline.shipped_configs().is_empty());
/// let chosen = pipeline.select(&GemmShape::new(300, 300, 300)).unwrap();
/// assert!(pipeline.shipped_kernel_configs().contains(&chosen));
/// ```
pub struct TuningPipeline {
    dataset: PerformanceDataset,
    train_rows: Vec<usize>,
    test_rows: Vec<usize>,
    shipped: Vec<usize>,
    /// Shared with `serving` so the cached and uncached paths are
    /// provably the same model.
    selector: Arc<Selector>,
    serving: Arc<CachedSelector>,
    /// Static view of the configuration space on the dataset's device —
    /// consulted when building resilient fallback chains so a meltdown
    /// can never fall back onto a statically unlaunchable kernel.
    analysis: SpaceAnalysis,
    prune_stats: Option<StaticPruneStats>,
    config: PipelineConfig,
}

impl TuningPipeline {
    /// Run the pipeline on an already-collected dataset.
    pub fn from_dataset(dataset: PerformanceDataset, config: PipelineConfig) -> Result<Self> {
        let analysis = KernelSpaceAnalyzer::new(dataset.device.clone())
            .analyze()
            .map_err(CoreError::Sim)?;
        let split = train_test_split(dataset.n_shapes(), config.test_fraction, config.seed);
        let shipped = config
            .prune
            .select(&dataset, &split.train, config.budget, config.seed)?;
        let selector = Arc::new(Selector::train(
            config.selector,
            &dataset,
            &split.train,
            &shipped,
            config.seed,
        )?);
        let serving = Arc::new(CachedSelector::new(Arc::clone(&selector)));
        Ok(TuningPipeline {
            dataset,
            train_rows: split.train,
            test_rows: split.test,
            shipped,
            selector,
            serving,
            analysis,
            prune_stats: None,
            config,
        })
    }

    /// Collect the dataset for `shapes` on `device`, then run. With
    /// `config.static_prune` set (the default), the kernel-space
    /// analyzer runs first and the sweep never prices configurations it
    /// proves unlaunchable — see [`TuningPipeline::prune_stats`]. With
    /// `config.analytical_prune = Some(n)` the zero-benchmark
    /// [`AnalyticalScorer`] additionally restricts the sweep to the
    /// union over dataset shapes of each shape's analytical top-`n`
    /// launchable configurations.
    pub fn run(
        device: &DeviceSpec,
        shapes: &[(GemmShape, String)],
        config: PipelineConfig,
    ) -> Result<Self> {
        if config.static_prune || config.analytical_prune.is_some() {
            let analysis = KernelSpaceAnalyzer::new(device.clone())
                .analyze()
                .map_err(CoreError::Sim)?;
            let mut skip = if config.static_prune {
                analysis.invalid_mask()
            } else {
                vec![false; KernelConfig::count()]
            };
            if let Some(n) = config.analytical_prune {
                let scorer = AnalyticalScorer::new(device);
                let mut keep = vec![false; KernelConfig::count()];
                for (shape, _) in shapes {
                    for idx in scorer.top_n(shape, n) {
                        keep[idx] = true;
                    }
                }
                for (skip_it, kept) in skip.iter_mut().zip(&keep) {
                    *skip_it = *skip_it || !kept;
                }
            }
            let (dataset, stats) = PerformanceDataset::collect_pruned(device, shapes, &skip)?;
            let mut pipeline = Self::from_dataset(dataset, config)?;
            pipeline.prune_stats = Some(stats);
            Ok(pipeline)
        } else {
            let dataset = PerformanceDataset::collect(device, shapes)?;
            Self::from_dataset(dataset, config)
        }
    }

    /// The shipped configuration indices.
    pub fn shipped_configs(&self) -> &[usize] {
        &self.shipped
    }

    /// The shipped configurations, decoded.
    pub fn shipped_kernel_configs(&self) -> Vec<KernelConfig> {
        self.shipped
            .iter()
            .filter_map(|&i| KernelConfig::from_index(i))
            .collect()
    }

    /// Select a configuration for an arbitrary shape (always runs the
    /// model; see [`TuningPipeline::select_cached`] for serving).
    pub fn select(&self, shape: &GemmShape) -> Result<KernelConfig> {
        let idx = self.selector.select_shape(shape)?;
        KernelConfig::from_index(idx).ok_or(CoreError::BadConfigIndex(idx))
    }

    /// Select a configuration through the concurrent serving cache:
    /// identical results to [`TuningPipeline::select`], but repeated
    /// shapes skip model inference and update the telemetry counters.
    pub fn select_cached(&self, shape: &GemmShape) -> Result<KernelConfig> {
        let idx = self.serving.select(shape)?;
        KernelConfig::from_index(idx).ok_or(CoreError::BadConfigIndex(idx))
    }

    /// Select configurations for many shapes in parallel, through the
    /// serving cache.
    pub fn select_batch(&self, shapes: &[GemmShape]) -> Result<Vec<KernelConfig>> {
        self.serving
            .select_batch(shapes)?
            .into_iter()
            .map(|idx| KernelConfig::from_index(idx).ok_or(CoreError::BadConfigIndex(idx)))
            .collect()
    }

    /// The serving cache wrapped around the trained selector.
    pub fn serving(&self) -> &Arc<CachedSelector> {
        &self.serving
    }

    /// Mean normalised performance of every configuration over the
    /// *training* rows (never the held-out ones: this ranking is part
    /// of the deployed artefact), each in `[0, 1]`.
    fn train_config_means(&self) -> Vec<f64> {
        let m = self.dataset.normalized_matrix_of(&self.train_rows);
        let mut means = vec![0.0f64; self.dataset.n_configs()];
        for i in 0..m.rows() {
            for (mean, &v) in means.iter_mut().zip(m.row(i)) {
                *mean += v;
            }
        }
        if m.rows() > 0 {
            let inv = 1.0 / m.rows() as f64;
            for mean in &mut means {
                *mean *= inv;
            }
        }
        means
    }

    /// Build a [`ResilientExecutor`] serving this pipeline's model on
    /// `queue`, with the fallback chain ranked by the shipped set's mean
    /// normalised performance on the training rows.
    pub fn resilient_executor(&self, queue: Queue, policy: ResilientPolicy) -> ResilientExecutor {
        let means = self.train_config_means();
        let mut ranked = self.shipped.clone();
        ranked.sort_by(|&a, &b| means[b].total_cmp(&means[a]));
        ResilientExecutor::with_static_analysis(
            Arc::clone(&self.serving),
            queue,
            ranked,
            policy,
            &self.analysis,
        )
    }

    /// Build an [`OnlineSelector`] over this pipeline's serving cache,
    /// with bandit priors seeded from each shipped configuration's mean
    /// normalised training-set performance — the offline classifier's
    /// own ranking, so the cold-start behaviour is bit-identical to the
    /// static stack until drift is detected.
    pub fn online_selector(&self, config: OnlineConfig) -> Result<Arc<OnlineSelector>> {
        let means = self.train_config_means();
        let priors: Vec<f64> = self
            .serving
            .selector()
            .configs()
            .iter()
            .map(|&c| means.get(c).copied().unwrap_or(0.0))
            .collect();
        Ok(Arc::new(OnlineSelector::new(
            Arc::clone(&self.serving),
            priors,
            config,
        )?))
    }

    /// Analytical bandit priors for the shipped set on `device`: each
    /// shipped configuration's zero-benchmark [`AnalyticalScorer`]
    /// score, averaged over the *training* shapes after per-shape
    /// normalisation by the best shipped score (so priors live in
    /// `[0, 1]` like the measured rewards they stand in for). Unlike
    /// [`TuningPipeline::online_selector`]'s offline-rank priors these
    /// need no benchmark data for `device` at all — the right seed when
    /// the serving device differs from the training device.
    pub fn analytical_priors(&self, device: &DeviceSpec) -> Vec<f64> {
        let scorer = AnalyticalScorer::new(device);
        let configs = self.serving.selector().configs().to_vec();
        let mut priors = vec![0.0f64; configs.len()];
        let mut rows = 0usize;
        for &row in &self.train_rows {
            let shape = &self.dataset.shapes[row];
            let scores: Vec<f64> = configs
                .iter()
                .map(|&c| scorer.score_index(c, shape))
                .collect();
            let best = scores.iter().fold(0.0f64, |a, &b| a.max(b));
            if best > 0.0 {
                rows += 1;
                for (prior, &s) in priors.iter_mut().zip(&scores) {
                    *prior += s / best;
                }
            }
        }
        if rows > 0 {
            let inv = 1.0 / rows as f64;
            for prior in &mut priors {
                *prior *= inv;
            }
        }
        priors
    }

    /// [`TuningPipeline::online_selector`] seeded with
    /// [`TuningPipeline::analytical_priors`] for `device` instead of the
    /// offline training ranking: the bandit starts from what the
    /// roofline model predicts *this* device will reward, with zero
    /// benchmark launches spent on the seed.
    pub fn analytical_online_selector(
        &self,
        device: &DeviceSpec,
        config: OnlineConfig,
    ) -> Result<Arc<OnlineSelector>> {
        let priors = self.analytical_priors(device);
        Ok(Arc::new(OnlineSelector::new(
            Arc::clone(&self.serving),
            priors,
            config,
        )?))
    }

    /// [`TuningPipeline::resilient_executor`] with the online layer
    /// attached: primary picks flow through `online`, and every launch
    /// outcome (including fallback rungs) feeds its reward estimates
    /// and drift detector.
    pub fn adaptive_executor(
        &self,
        queue: Queue,
        policy: ResilientPolicy,
        config: OnlineConfig,
    ) -> Result<(ResilientExecutor, Arc<OnlineSelector>)> {
        let online = self.online_selector(config)?;
        let executor = self
            .resilient_executor(queue, policy)
            .with_online(Arc::clone(&online));
        Ok((executor, online))
    }

    /// [`TuningPipeline::adaptive_executor`] warm-restarted from a
    /// `core::persist` snapshot: the stack is built cold, then the
    /// snapshot's online/cache/telemetry sections are applied
    /// ([`crate::Snapshot::restore_stack`] semantics —
    /// corruption-tolerant, device-fingerprint-checked). The typed
    /// [`crate::RestoreOutcome`] reports exactly what was recovered; on
    /// `ColdStart` the returned stack is simply the cold one, so the
    /// caller always gets a serving executor.
    pub fn warm_adaptive_executor(
        &self,
        queue: Queue,
        policy: ResilientPolicy,
        config: OnlineConfig,
        snapshot: &crate::Snapshot,
    ) -> Result<(
        ResilientExecutor,
        Arc<OnlineSelector>,
        crate::RestoreOutcome,
    )> {
        let (executor, online) = self.adaptive_executor(queue, policy, config)?;
        let outcome = snapshot.restore_stack(&online, executor.queue().device());
        Ok((executor, online, outcome))
    }

    /// Build a [`ResilientExecutor`] for a *serving* device that may
    /// differ from the training device: the kernel-space analyzer runs
    /// on `queue`'s device so the fallback chain is filtered against
    /// the hardware the launches will actually hit, and the executor
    /// gets its own fresh [`CachedSelector`] over the shared trained
    /// model — per-device cache generations and telemetry, one model.
    /// This is the per-shard stack a multi-device scheduler composes.
    pub fn device_executor(
        &self,
        queue: Queue,
        policy: ResilientPolicy,
    ) -> Result<ResilientExecutor> {
        let serving = Arc::new(CachedSelector::new(Arc::clone(&self.selector)));
        self.device_executor_with(serving, queue, policy)
    }

    /// [`TuningPipeline::device_executor`] with a *capacity-bounded*,
    /// Bloom-admitted decision cache — the right executor behind an
    /// ingress layer, where the shape stream is unbounded and the
    /// decision cache must not be.
    pub fn device_bounded_executor(
        &self,
        queue: Queue,
        policy: ResilientPolicy,
        cache: crate::cache::BoundedCacheConfig,
    ) -> Result<ResilientExecutor> {
        let serving = Arc::new(CachedSelector::with_bounded_cache(
            Arc::clone(&self.selector),
            crate::cache::DEFAULT_SHARDS,
            cache,
        ));
        self.device_executor_with(serving, queue, policy)
    }

    /// Shared builder: wrap an existing per-device serving cache in a
    /// resilient executor whose fallback chain is filtered by a fresh
    /// analysis of `queue`'s device.
    fn device_executor_with(
        &self,
        serving: Arc<CachedSelector>,
        queue: Queue,
        policy: ResilientPolicy,
    ) -> Result<ResilientExecutor> {
        let analysis = KernelSpaceAnalyzer::new(queue.device().clone())
            .analyze()
            .map_err(CoreError::Sim)?;
        let means = self.train_config_means();
        let mut ranked = self.shipped.clone();
        ranked.sort_by(|&a, &b| means[b].total_cmp(&means[a]));
        Ok(ResilientExecutor::with_static_analysis(
            serving, queue, ranked, policy, &analysis,
        ))
    }

    /// [`TuningPipeline::device_executor`] with a per-device online
    /// layer attached: the shard's bandit state, drift detector and
    /// cache generation are all private to its device, so one device
    /// drifting does not invalidate its siblings' decisions.
    pub fn device_adaptive_executor(
        &self,
        queue: Queue,
        policy: ResilientPolicy,
        config: OnlineConfig,
    ) -> Result<(ResilientExecutor, Arc<OnlineSelector>)> {
        let serving = Arc::new(CachedSelector::new(Arc::clone(&self.selector)));
        let executor = self.device_executor_with(Arc::clone(&serving), queue, policy)?;
        let means = self.train_config_means();
        let priors: Vec<f64> = serving
            .selector()
            .configs()
            .iter()
            .map(|&c| means.get(c).copied().unwrap_or(0.0))
            .collect();
        let online = Arc::new(OnlineSelector::new(serving, priors, config)?);
        Ok((executor.with_online(Arc::clone(&online)), online))
    }

    /// Static analysis of the full configuration space on the dataset's
    /// device (the same verdicts `analyze_space` reports).
    pub fn space_analysis(&self) -> &SpaceAnalysis {
        &self.analysis
    }

    /// Benchmarking work avoided by static pre-pruning. `Some` only when
    /// the pipeline was built via [`TuningPipeline::run`] with
    /// `static_prune` enabled; `None` for pre-collected datasets.
    pub fn prune_stats(&self) -> Option<&StaticPruneStats> {
        self.prune_stats.as_ref()
    }

    /// Live serving telemetry (hits, misses, pick counts, latencies).
    pub fn telemetry(&self) -> &SelectionTelemetry {
        self.serving.telemetry()
    }

    /// Best geometric-mean performance *achievable* with the shipped set
    /// on the held-out rows (the Figure 4 number).
    pub fn achievable_ceiling(&self) -> f64 {
        evaluate::achievable_score(&self.dataset, &self.test_rows, &self.shipped)
    }

    /// Geometric-mean performance of the selector's choices on the
    /// held-out rows (the Table I number).
    pub fn test_score(&self) -> Result<f64> {
        let chosen = self.selector.select_rows(&self.dataset, &self.test_rows)?;
        Ok(evaluate::selection_score(
            &self.dataset,
            &self.test_rows,
            &chosen,
        ))
    }

    /// Selector score on the training rows (overfitting diagnostic).
    pub fn train_score(&self) -> Result<f64> {
        let chosen = self.selector.select_rows(&self.dataset, &self.train_rows)?;
        Ok(evaluate::selection_score(
            &self.dataset,
            &self.train_rows,
            &chosen,
        ))
    }

    /// Export the selector as Rust source (decision trees only).
    pub fn export_rust(&self) -> Result<String> {
        let compiled = CompiledTree::from_selector(&self.selector)?;
        Ok(emit_rust_source(&compiled, &self.shipped))
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &PerformanceDataset {
        &self.dataset
    }

    /// Training / held-out row indices.
    pub fn split(&self) -> (&[usize], &[usize]) {
        (&self.train_rows, &self.test_rows)
    }

    /// The trained selector.
    pub fn selector(&self) -> &Selector {
        &self.selector
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<(GemmShape, String)> {
        [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
            (32, 4096, 4096),
            (2, 2048, 1000),
            (6272, 576, 128),
            (1024, 1024, 1024),
            (25088, 576, 128),
            (8, 25088, 4096),
            (128, 128, 1000),
            (3136, 576, 192),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect()
    }

    #[test]
    fn end_to_end_defaults() {
        let p = TuningPipeline::run(
            &DeviceSpec::amd_r9_nano(),
            &shapes(),
            PipelineConfig::default(),
        )
        .unwrap();
        assert!(!p.shipped_configs().is_empty());
        assert!(p.shipped_configs().len() <= 6);
        let ceiling = p.achievable_ceiling();
        assert!(ceiling > 0.0 && ceiling <= 1.0);
        let score = p.test_score().unwrap();
        assert!(
            score > 0.0 && score <= ceiling + 1e-12,
            "score {score} ceiling {ceiling}"
        );
    }

    #[test]
    fn select_returns_shipped_kernels() {
        let p = TuningPipeline::run(
            &DeviceSpec::amd_r9_nano(),
            &shapes(),
            PipelineConfig::default(),
        )
        .unwrap();
        let cfg = p.select(&GemmShape::new(300, 300, 300)).unwrap();
        assert!(p.shipped_kernel_configs().contains(&cfg));
    }

    #[test]
    fn export_rust_for_tree_selector() {
        let p = TuningPipeline::run(
            &DeviceSpec::amd_r9_nano(),
            &shapes(),
            PipelineConfig::default(),
        )
        .unwrap();
        let src = p.export_rust().unwrap();
        assert!(src.contains("pub fn select_kernel"));
    }

    #[test]
    fn non_tree_selector_cannot_export() {
        let p = TuningPipeline::run(
            &DeviceSpec::amd_r9_nano(),
            &shapes(),
            PipelineConfig {
                selector: SelectorKind::LinearSvm,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert!(p.export_rust().is_err());
    }

    #[test]
    fn cached_select_agrees_with_uncached_and_counts() {
        let p = TuningPipeline::run(
            &DeviceSpec::amd_r9_nano(),
            &shapes(),
            PipelineConfig::default(),
        )
        .unwrap();
        let probes: Vec<GemmShape> = (1..=6).map(|i| GemmShape::new(i * 50, 200, 100)).collect();
        for probe in &probes {
            assert_eq!(
                p.select(probe).unwrap(),
                p.select_cached(probe).unwrap(),
                "cache must be a pure memoisation"
            );
            // Warm now: repeat must hit.
            p.select_cached(probe).unwrap();
        }
        let t = p.telemetry();
        assert_eq!(t.misses(), probes.len() as u64);
        assert_eq!(t.hits(), probes.len() as u64);
        assert_eq!(t.total(), t.hits() + t.misses());
    }

    #[test]
    fn pipeline_batch_returns_shipped_kernels() {
        let p = TuningPipeline::run(
            &DeviceSpec::amd_r9_nano(),
            &shapes(),
            PipelineConfig::default(),
        )
        .unwrap();
        let probes: Vec<GemmShape> = (1..=10).map(|i| GemmShape::new(i * 31, 128, 512)).collect();
        let chosen = p.select_batch(&probes).unwrap();
        assert_eq!(chosen.len(), probes.len());
        let shipped = p.shipped_kernel_configs();
        for cfg in chosen {
            assert!(shipped.contains(&cfg));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = PipelineConfig::default();
        let a = TuningPipeline::run(&DeviceSpec::amd_r9_nano(), &shapes(), cfg.clone()).unwrap();
        let b = TuningPipeline::run(&DeviceSpec::amd_r9_nano(), &shapes(), cfg).unwrap();
        assert_eq!(a.shipped_configs(), b.shipped_configs());
        assert_eq!(a.test_score().unwrap(), b.test_score().unwrap());
    }

    #[test]
    fn analytical_prune_shrinks_the_sweep_and_still_ships() {
        let device = DeviceSpec::amd_r9_nano();
        let baseline = TuningPipeline::run(&device, &shapes(), PipelineConfig::default()).unwrap();
        let pruned = TuningPipeline::run(
            &device,
            &shapes(),
            PipelineConfig {
                analytical_prune: Some(64),
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        let base_stats = baseline.prune_stats().unwrap();
        let pruned_stats = pruned.prune_stats().unwrap();
        assert!(
            pruned_stats.pruned_configs > base_stats.pruned_configs,
            "analytical oracle must prune beyond static invalidity: {} vs {}",
            pruned_stats.pruned_configs,
            base_stats.pruned_configs
        );
        assert!(!pruned.shipped_configs().is_empty());
        let score = pruned.test_score().unwrap();
        assert!(score > 0.0 && score <= 1.0, "score {score}");
    }

    #[test]
    fn analytical_prune_without_static_prune_also_works() {
        let p = TuningPipeline::run(
            &DeviceSpec::amd_r9_nano(),
            &shapes(),
            PipelineConfig {
                static_prune: false,
                analytical_prune: Some(32),
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert!(p.prune_stats().unwrap().pruned_configs > 0);
        assert!(!p.shipped_configs().is_empty());
    }

    #[test]
    fn analytical_priors_are_normalised_rewards() {
        let device = DeviceSpec::amd_r9_nano();
        let p = TuningPipeline::run(&device, &shapes(), PipelineConfig::default()).unwrap();
        let priors = p.analytical_priors(&device);
        assert_eq!(priors.len(), p.serving().selector().configs().len());
        assert!(priors.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!(
            priors.iter().any(|&x| x > 0.0),
            "at least one shipped config must score on its own training device"
        );
        // The best shipped config should hold a meaningfully non-zero
        // prior once averaged over the training shapes.
        let best = priors.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(best > 0.5, "best shipped prior {best}");
    }

    #[test]
    fn analytical_online_selector_builds_for_a_foreign_device() {
        let p = TuningPipeline::run(
            &DeviceSpec::amd_r9_nano(),
            &shapes(),
            PipelineConfig::default(),
        )
        .unwrap();
        let online = p
            .analytical_online_selector(&DeviceSpec::edge_dsp(), OnlineConfig::default())
            .unwrap();
        let shape = GemmShape::new(300, 300, 300);
        let idx = online.select(&shape).unwrap();
        assert!(p.shipped_configs().contains(&idx));
    }

    #[test]
    fn split_respects_fraction() {
        let p = TuningPipeline::run(
            &DeviceSpec::amd_r9_nano(),
            &shapes(),
            PipelineConfig {
                test_fraction: 0.25,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        let (train, test) = p.split();
        assert_eq!(train.len() + test.len(), 16);
        assert_eq!(test.len(), 4);
    }
}
