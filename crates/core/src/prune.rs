//! Configuration pruning: shrinking 640 configurations to a small
//! shipped set (Section III of the paper).
//!
//! Every clustering strategy operates on the *rows* of the normalised
//! performance matrix — one 640-dimensional performance vector per GEMM
//! shape — finds a set of representative rows/vectors, and ships the
//! best configuration of each representative. The naive baseline skips
//! clustering and ships the configurations that are most often optimal.

use crate::dataset::PerformanceDataset;
use crate::Result;
use autokernel_mlkit::tree::{DecisionTreeRegressor, TreeParams};
use autokernel_mlkit::{metrics, Hdbscan, KMeans, Matrix, Pca};
use serde::{Deserialize, Serialize};

/// The five pruning strategies compared in Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PruneMethod {
    /// Ship the N configurations with the highest optimal counts.
    TopN,
    /// k-means over raw 640-dim performance vectors.
    KMeans,
    /// PCA to a low-dimensional space, then k-means there.
    PcaKMeans,
    /// HDBSCAN density clustering; cluster medoids are representatives.
    Hdbscan,
    /// Multi-output decision-tree regression with bounded leaf count;
    /// leaf mean-vectors are the representatives.
    DecisionTree,
}

impl PruneMethod {
    /// All methods in the order the paper discusses them.
    pub fn all() -> [PruneMethod; 5] {
        [
            PruneMethod::TopN,
            PruneMethod::KMeans,
            PruneMethod::PcaKMeans,
            PruneMethod::Hdbscan,
            PruneMethod::DecisionTree,
        ]
    }

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            PruneMethod::TopN => "top-N by optimal count",
            PruneMethod::KMeans => "k-means",
            PruneMethod::PcaKMeans => "PCA + k-means",
            PruneMethod::Hdbscan => "HDBSCAN",
            PruneMethod::DecisionTree => "decision tree",
        }
    }

    /// Select at most `budget` configuration indices using the rows in
    /// `train` of `ds`. The returned set is deduplicated and sorted;
    /// it may be smaller than `budget` when clusters share a best
    /// configuration.
    pub fn select(
        &self,
        ds: &PerformanceDataset,
        train: &[usize],
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>> {
        let mut configs = match self {
            PruneMethod::TopN => top_n(ds, train, budget),
            PruneMethod::KMeans => kmeans_select(ds, train, budget, seed)?,
            PruneMethod::PcaKMeans => pca_kmeans_select(ds, train, budget, seed)?,
            PruneMethod::Hdbscan => hdbscan_select(ds, train, budget)?,
            PruneMethod::DecisionTree => tree_select(ds, train, budget)?,
        };
        configs.sort_unstable();
        configs.dedup();
        configs.truncate(budget);
        Ok(configs)
    }
}

/// The naive baseline: configurations ranked by how often they are
/// optimal on the training rows (ties broken by mean performance).
fn top_n(ds: &PerformanceDataset, train: &[usize], budget: usize) -> Vec<usize> {
    let mut counts = vec![0usize; ds.n_configs()];
    for &i in train {
        counts[ds.best_config(i)] += 1;
    }
    let means = mean_performance_of(ds, train);
    let mut order: Vec<usize> = (0..ds.n_configs()).collect();
    order.sort_by(|&a, &b| {
        counts[b]
            .cmp(&counts[a])
            .then(means[b].partial_cmp(&means[a]).unwrap())
    });
    order.truncate(budget);
    order
}

fn mean_performance_of(ds: &PerformanceDataset, rows: &[usize]) -> Vec<f64> {
    let m = ds.normalized_matrix_of(rows);
    let mut means = vec![0.0f64; m.cols()];
    for i in 0..m.rows() {
        for (s, &v) in means.iter_mut().zip(m.row(i)) {
            *s += v;
        }
    }
    let n = m.rows().max(1) as f64;
    means.iter_mut().for_each(|v| *v /= n);
    means
}

/// k-means over the raw performance vectors; each centroid (itself a
/// 640-dim vector of expected performance) nominates its argmax config.
fn kmeans_select(
    ds: &PerformanceDataset,
    train: &[usize],
    budget: usize,
    seed: u64,
) -> Result<Vec<usize>> {
    let x = ds.normalized_matrix_of(train);
    let k = budget.min(train.len());
    let mut km = KMeans::new(k, seed);
    km.fit(&x)?;
    let centroids = km.centroids()?;
    Ok((0..centroids.rows())
        .filter_map(|c| metrics::argmax(centroids.row(c)))
        .collect())
}

/// PCA to (budget+2 capped) dimensions, k-means there, then map each
/// centroid back through the inverse transform and take its argmax.
fn pca_kmeans_select(
    ds: &PerformanceDataset,
    train: &[usize],
    budget: usize,
    seed: u64,
) -> Result<Vec<usize>> {
    let x = ds.normalized_matrix_of(train);
    let dims = (budget + 2).min(train.len().saturating_sub(1)).max(1);
    let mut pca = Pca::new(dims);
    let z = pca.fit_transform(&x)?;
    let k = budget.min(train.len());
    let mut km = KMeans::new(k, seed);
    km.fit(&z)?;
    let back = pca.inverse_transform(km.centroids()?)?;
    Ok((0..back.rows())
        .filter_map(|c| metrics::argmax(back.row(c)))
        .collect())
}

/// HDBSCAN over the performance vectors. HDBSCAN chooses its own cluster
/// count, so `min_cluster_size` is swept and the parameterisation whose
/// cluster count is closest to (without exceeding) the budget is kept;
/// cluster medoids nominate their row's best configuration. Shapes left
/// as noise contribute nothing, as in the paper's setup.
fn hdbscan_select(ds: &PerformanceDataset, train: &[usize], budget: usize) -> Result<Vec<usize>> {
    let x = ds.normalized_matrix_of(train);
    let max_mcs = (train.len() / 2).max(2);

    let mut best: Option<(usize, Vec<usize>)> = None; // (clusters, medoid rows)
    for mcs in 2..=max_mcs.min(24) {
        let mut h = Hdbscan::new(mcs);
        if h.fit(&x).is_err() {
            continue;
        }
        let n = h.n_clusters()?;
        if n == 0 {
            continue;
        }
        let medoids = h.medoid_indices(&x)?;
        let score = if n <= budget { n } else { 0 }; // prefer most clusters within budget
        let better = match &best {
            None => true,
            Some((bn, _)) => score > *bn,
        };
        if better && n <= budget {
            best = Some((n, medoids));
        } else if best.is_none() && n > budget {
            // Over budget everywhere: keep the largest clusters only.
            let mut h2_medoids = medoids;
            h2_medoids.truncate(budget);
            best = Some((0, h2_medoids));
        }
    }

    let medoid_rows = best.map(|(_, m)| m).unwrap_or_default();
    let mut configs: Vec<usize> = medoid_rows
        .iter()
        .map(|&r| ds.best_config(train[r]))
        .collect();
    if configs.is_empty() {
        // Degenerate data (e.g. all vectors identical): fall back to the
        // single globally best configuration.
        configs = top_n(ds, train, 1);
    }
    Ok(configs)
}

/// Decision-tree regression from log-shape features to the 640-dim
/// performance vector, grown best-first with at most `budget` leaves;
/// each leaf's mean performance vector nominates its argmax.
fn tree_select(ds: &PerformanceDataset, train: &[usize], budget: usize) -> Result<Vec<usize>> {
    let features = ds.features_of(train);
    let targets = ds.normalized_matrix_of(train);
    let mut reg = DecisionTreeRegressor::new(TreeParams {
        max_leaf_nodes: Some(budget.max(1)),
        min_samples_leaf: 2,
        ..TreeParams::default()
    });
    reg.fit(&features, &targets)?;
    Ok(reg
        .tree()?
        .leaf_values()
        .into_iter()
        .filter_map(metrics::argmax)
        .collect())
}

/// Per-leaf representative matrix (used by tests/diagnostics): the leaf
/// mean-vectors the decision-tree pruner clusters the dataset into.
pub fn tree_representatives(
    ds: &PerformanceDataset,
    train: &[usize],
    budget: usize,
) -> Result<Matrix> {
    let features = ds.features_of(train);
    let targets = ds.normalized_matrix_of(train);
    let mut reg = DecisionTreeRegressor::new(TreeParams {
        max_leaf_nodes: Some(budget.max(1)),
        min_samples_leaf: 2,
        ..TreeParams::default()
    });
    reg.fit(&features, &targets)?;
    let leaves = reg.tree()?.leaf_values();
    let rows: Vec<Vec<f64>> = leaves.into_iter().map(|l| l.to_vec()).collect();
    Ok(Matrix::from_rows(&rows).expect("leaf rows are rectangular"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokernel_gemm::GemmShape;
    use autokernel_sycl_sim::DeviceSpec;

    fn ds() -> PerformanceDataset {
        // A spread of shapes with different optimal regimes.
        let shapes: Vec<(GemmShape, String)> = [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
            (32, 4096, 4096),
            (100352, 27, 64),
            (2, 2048, 1000),
            (6272, 576, 128),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect();
        PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap()
    }

    #[test]
    fn every_method_respects_budget() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        for method in PruneMethod::all() {
            for budget in [1, 3, 6] {
                let sel = method.select(&ds, &train, budget, 7).unwrap();
                assert!(
                    !sel.is_empty() && sel.len() <= budget,
                    "{} returned {} configs for budget {budget}",
                    method.name(),
                    sel.len()
                );
                assert!(sel.iter().all(|&c| c < ds.n_configs()));
                // Deduplicated.
                let mut d = sel.clone();
                d.dedup();
                assert_eq!(d.len(), sel.len());
            }
        }
    }

    #[test]
    fn top_n_leads_with_most_frequent_optimum() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let counts = {
            let mut c = vec![0usize; ds.n_configs()];
            for &i in &train {
                c[ds.best_config(i)] += 1;
            }
            c
        };
        let max_count = *counts.iter().max().unwrap();
        let sel = PruneMethod::TopN.select(&ds, &train, 1, 0).unwrap();
        assert_eq!(counts[sel[0]], max_count);
    }

    #[test]
    fn selections_are_deterministic() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        for method in PruneMethod::all() {
            let a = method.select(&ds, &train, 5, 3).unwrap();
            let b = method.select(&ds, &train, 5, 3).unwrap();
            assert_eq!(a, b, "{} nondeterministic", method.name());
        }
    }

    #[test]
    fn clustering_covers_distinct_regimes() {
        // With enough budget, the k-means selection must achieve a higher
        // oracle score than shipping a single config.
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let one = PruneMethod::TopN.select(&ds, &train, 1, 0).unwrap();
        let clustered = PruneMethod::KMeans.select(&ds, &train, 6, 1).unwrap();
        let s1 = crate::evaluate::achievable_score(&ds, &train, &one);
        let s6 = crate::evaluate::achievable_score(&ds, &train, &clustered);
        assert!(
            s6 >= s1,
            "k-means ({s6}) should not lose to a single config ({s1})"
        );
    }

    #[test]
    fn tree_representatives_match_budget() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let reps = tree_representatives(&ds, &train, 4).unwrap();
        assert!(reps.rows() <= 4 && reps.rows() >= 1);
        assert_eq!(reps.cols(), ds.n_configs());
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(PruneMethod::all().len(), 5);
        let names: Vec<&str> = PruneMethod::all().iter().map(|m| m.name()).collect();
        assert!(names.contains(&"PCA + k-means"));
    }
}
