//! Markdown report generation: a human-readable tuning summary a team
//! would attach to the pull request that updates a library's shipped
//! kernel set.

use crate::libsize::LibrarySizeModel;
use crate::pipeline::TuningPipeline;
use crate::Result;
use std::fmt::Write as _;

/// Render a full markdown report for a trained pipeline.
pub fn markdown_report(pipeline: &TuningPipeline) -> Result<String> {
    let mut out = String::new();
    let ds = pipeline.dataset();
    let (train, test) = pipeline.split();
    let cfg = pipeline.config();

    writeln!(out, "# Kernel selection tuning report").unwrap();
    writeln!(out).unwrap();
    writeln!(out, "- device: **{}**", ds.device.name).unwrap();
    writeln!(
        out,
        "- dataset: {} shapes × {} configurations",
        ds.n_shapes(),
        ds.n_configs()
    )
    .unwrap();
    writeln!(
        out,
        "- split: {} train / {} test (seed {})",
        train.len(),
        test.len(),
        cfg.seed
    )
    .unwrap();
    writeln!(
        out,
        "- pruning: **{}**, budget {}; selector: **{}**",
        cfg.prune.name(),
        cfg.budget,
        cfg.selector.name()
    )
    .unwrap();
    writeln!(out).unwrap();

    writeln!(out, "## Shipped kernels").unwrap();
    writeln!(out).unwrap();
    writeln!(out, "| index | configuration |").unwrap();
    writeln!(out, "|---|---|").unwrap();
    for (&idx, kc) in pipeline
        .shipped_configs()
        .iter()
        .zip(pipeline.shipped_kernel_configs())
    {
        writeln!(out, "| {idx} | `{kc}` |").unwrap();
    }
    writeln!(out).unwrap();

    writeln!(
        out,
        "## Scores (geometric mean of per-shape relative performance)"
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(out, "| metric | value |").unwrap();
    writeln!(out, "|---|---|").unwrap();
    writeln!(
        out,
        "| achievable ceiling (test) | {:.2}% |",
        pipeline.achievable_ceiling() * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "| selector score (test) | {:.2}% |",
        pipeline.test_score()? * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "| selector score (train) | {:.2}% |",
        pipeline.train_score()? * 100.0
    )
    .unwrap();
    writeln!(out).unwrap();

    // Feature importances, when the selector is a tree.
    if let Some(tree) = pipeline.selector().as_tree() {
        let imp = tree.tree()?.feature_importances();
        writeln!(out, "## Feature importances (decision tree)").unwrap();
        writeln!(out).unwrap();
        writeln!(out, "| feature | importance |").unwrap();
        writeln!(out, "|---|---|").unwrap();
        for (name, v) in ["M", "K", "N"].iter().zip(&imp) {
            writeln!(out, "| {name} | {:.3} |", v).unwrap();
        }
        writeln!(out).unwrap();
    }

    let size = LibrarySizeModel::default().report(pipeline.shipped_configs());
    writeln!(out, "## Library size impact").unwrap();
    writeln!(out).unwrap();
    writeln!(out, "| | full space | shipped |").unwrap();
    writeln!(out, "|---|---|---|").unwrap();
    writeln!(
        out,
        "| compile-time kernels | {} | {} |",
        size.full_variants, size.shipped_variants
    )
    .unwrap();
    writeln!(
        out,
        "| library bytes | {} | {} |",
        size.full_bytes, size.shipped_bytes
    )
    .unwrap();
    writeln!(
        out,
        "| device-compile time | {:.0} s | {:.0} s |",
        size.full_build_s, size.shipped_build_s
    )
    .unwrap();
    writeln!(
        out,
        "\nkernel-section shrink: **{:.1}×**",
        size.kernel_section_shrink()
    )
    .unwrap();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use autokernel_gemm::GemmShape;
    use autokernel_sycl_sim::DeviceSpec;

    fn pipeline() -> TuningPipeline {
        let shapes: Vec<(GemmShape, String)> = [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
            (32, 4096, 4096),
            (2, 2048, 1000),
            (6272, 576, 128),
            (1024, 1024, 1024),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect();
        TuningPipeline::run(
            &DeviceSpec::amd_r9_nano(),
            &shapes,
            PipelineConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn report_contains_all_sections() {
        let report = markdown_report(&pipeline()).unwrap();
        for needle in [
            "# Kernel selection tuning report",
            "## Shipped kernels",
            "## Scores",
            "## Feature importances",
            "## Library size impact",
            "kernel-section shrink",
        ] {
            assert!(
                report.contains(needle),
                "missing '{needle}' in report:\n{report}"
            );
        }
    }

    #[test]
    fn report_mentions_every_shipped_kernel() {
        let p = pipeline();
        let report = markdown_report(&p).unwrap();
        for kc in p.shipped_kernel_configs() {
            assert!(report.contains(&kc.to_string()));
        }
    }

    #[test]
    fn importances_rows_present_for_tree_selector_only() {
        let p = pipeline();
        assert!(markdown_report(&p).unwrap().contains("| M |"));
    }
}
