//! Regression-based runtime selection — the paper's related-work
//! direction (Bergstra et al. 2012): instead of *classifying* a shape
//! into one of the shipped kernels, *predict each shipped kernel's
//! performance* for the shape and pick the argmax.
//!
//! This needs one regressor per shipped configuration but lets the
//! selector express "these two kernels are nearly tied here", which a
//! classifier cannot. The `ext_regression` bench compares both against
//! the Table I protocol.

use crate::dataset::PerformanceDataset;
use crate::{CoreError, Result};
use autokernel_gemm::GemmShape;
use autokernel_mlkit::preprocess::StandardScaler;
use autokernel_mlkit::{GradientBoostingRegressor, Matrix};

/// Hyper-parameters for the per-configuration performance regressors.
#[derive(Debug, Clone, Copy)]
pub struct RegressionParams {
    /// Boosting stages per configuration model.
    pub n_estimators: usize,
    /// Boosting learning rate.
    pub learning_rate: f64,
    /// Depth of each boosted tree.
    pub max_depth: usize,
}

impl Default for RegressionParams {
    fn default() -> Self {
        RegressionParams {
            n_estimators: 60,
            learning_rate: 0.15,
            max_depth: 3,
        }
    }
}

/// A trained regression selector: one boosted-tree performance model
/// per shipped configuration.
pub struct RegressionSelector {
    configs: Vec<usize>,
    scaler: StandardScaler,
    models: Vec<GradientBoostingRegressor>,
}

impl RegressionSelector {
    /// Train on the training rows of `ds`, one model per configuration
    /// in `configs`, regressing the per-shape normalised performance
    /// from standardised log₂ shape features.
    pub fn train(
        ds: &PerformanceDataset,
        train: &[usize],
        configs: &[usize],
        params: RegressionParams,
    ) -> Result<Self> {
        if configs.is_empty() || train.is_empty() {
            return Err(CoreError::Dataset(
                "empty training set or config set".into(),
            ));
        }
        let mut scaler = StandardScaler::new();
        let x = scaler.fit_transform(&ds.features_of(train))?;

        let models = configs
            .iter()
            .map(|&cfg| {
                let y: Vec<f64> = train.iter().map(|&i| ds.normalized(i, cfg)).collect();
                let mut g = GradientBoostingRegressor::new(
                    params.n_estimators,
                    params.learning_rate,
                    params.max_depth,
                );
                g.fit(&x, &y)?;
                Ok(g)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(RegressionSelector {
            configs: configs.to_vec(),
            scaler,
            models,
        })
    }

    /// Predicted normalised performance of every shipped configuration
    /// for `shape`, in `configs()` order.
    pub fn predict_profile(&self, shape: &GemmShape) -> Result<Vec<f64>> {
        let f = Matrix::from_rows(&[shape.log_features().to_vec()]).expect("one feature row");
        let x = self.scaler.transform(&f)?;
        self.models.iter().map(|m| Ok(m.predict(&x)?[0])).collect()
    }

    /// Select the configuration with the highest predicted performance.
    pub fn select_shape(&self, shape: &GemmShape) -> Result<usize> {
        let profile = self.predict_profile(shape)?;
        let best = profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .expect("non-empty configs");
        Ok(self.configs[best])
    }

    /// Select for a batch of dataset rows.
    pub fn select_rows(&self, ds: &PerformanceDataset, rows: &[usize]) -> Result<Vec<usize>> {
        rows.iter()
            .map(|&i| self.select_shape(&ds.shapes[i]))
            .collect()
    }

    /// The shipped configuration set.
    pub fn configs(&self) -> &[usize] {
        &self.configs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::PruneMethod;
    use autokernel_sycl_sim::DeviceSpec;

    fn ds() -> PerformanceDataset {
        let shapes: Vec<(GemmShape, String)> = [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
            (32, 4096, 4096),
            (2, 2048, 1000),
            (6272, 576, 128),
            (1024, 1024, 1024),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect();
        PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap()
    }

    #[test]
    fn trains_and_selects_within_shipped_set() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = PruneMethod::TopN.select(&ds, &train, 5, 0).unwrap();
        let sel =
            RegressionSelector::train(&ds, &train, &configs, RegressionParams::default()).unwrap();
        for &row in &train {
            let chosen = sel.select_shape(&ds.shapes[row]).unwrap();
            assert!(configs.contains(&chosen));
        }
    }

    #[test]
    fn predicted_profiles_are_plausible() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = PruneMethod::TopN.select(&ds, &train, 4, 0).unwrap();
        let sel =
            RegressionSelector::train(&ds, &train, &configs, RegressionParams::default()).unwrap();
        let profile = sel.predict_profile(&ds.shapes[0]).unwrap();
        assert_eq!(profile.len(), configs.len());
        // Normalised performance predictions should live around (0, 1].
        for p in profile {
            assert!((-0.5..=1.5).contains(&p), "implausible prediction {p}");
        }
    }

    #[test]
    fn regression_selection_scores_reasonably_on_training_rows() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = PruneMethod::DecisionTree.select(&ds, &train, 6, 0).unwrap();
        let sel =
            RegressionSelector::train(&ds, &train, &configs, RegressionParams::default()).unwrap();
        let chosen = sel.select_rows(&ds, &train).unwrap();
        let score = crate::evaluate::selection_score(&ds, &train, &chosen);
        let ceiling = crate::evaluate::achievable_score(&ds, &train, &configs);
        assert!(score > 0.6 * ceiling, "score {score} vs ceiling {ceiling}");
        assert!(score <= ceiling + 1e-12);
    }

    #[test]
    fn rejects_empty_inputs() {
        let ds = ds();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        assert!(RegressionSelector::train(&ds, &train, &[], RegressionParams::default()).is_err());
        assert!(RegressionSelector::train(&ds, &[], &[1], RegressionParams::default()).is_err());
    }
}
