//! Concurrent serving layer: a sharded shape→configuration decision
//! cache with selection telemetry.
//!
//! The paper's pitch for decision trees is *deployment latency*: the
//! selector sits on the hot path of every GEMM dispatch. In a serving
//! system the same handful of layer shapes recurs millions of times, so
//! the model only ever needs to run once per distinct shape — after
//! that the decision is a hash-map lookup. [`CachedSelector`] wraps a
//! trained [`Selector`] with exactly that memoisation:
//!
//! * the cache is split into [`DEFAULT_SHARDS`] independent
//!   [`RwLock`]-protected shards, indexed by the shape's
//!   [`GemmShape::stable_hash`], so read-mostly traffic from many
//!   threads never contends on a single lock;
//! * every decision updates a lock-free [`SelectionTelemetry`] block —
//!   hit/miss counters, per-shipped-configuration pick counts and
//!   latency accumulators — cheap enough to leave on in production and
//!   exactly what you need to see whether the shipped set still matches
//!   the traffic mix.

use crate::select::Selector;
use crate::Result;
use autokernel_gemm::GemmShape;
use parking_lot::RwLock;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default shard count: enough to make lock collisions rare at typical
/// host thread counts without bloating the cache's footprint.
pub const DEFAULT_SHARDS: usize = 16;

/// A counting Bloom filter over GEMM shapes: a fixed array of 8-bit
/// saturating counters indexed by `k` double-hashed probes of the
/// shape's stable hash.
///
/// The ingress layer uses it as a TinyLFU-style *admission* front on
/// the bounded decision cache: a shape only earns a cache slot once the
/// filter has counted it [`BoundedCacheConfig::admit_threshold`] times,
/// so a million one-hit-wonder shapes cost 1 byte of counter each
/// (amortised) instead of a map entry — the Stream-K++ trick for
/// keeping adaptive GEMM decision caches bounded under unbounded shape
/// streams. Counters only ever increase (saturating at 255): the filter
/// estimates "has this shape been seen at least t times", and
/// over-estimates at exactly the classic Bloom false-positive rate.
#[derive(Debug)]
pub struct CountingBloom {
    counters: Vec<AtomicU8>,
    hashes: u32,
    observed: AtomicU64,
}

impl CountingBloom {
    /// A filter with `counters` 8-bit slots probed by `hashes` hash
    /// functions (both clamped to at least 1).
    pub fn new(counters: usize, hashes: u32) -> Self {
        CountingBloom {
            counters: (0..counters.max(1)).map(|_| AtomicU8::new(0)).collect(),
            hashes: hashes.max(1),
            observed: AtomicU64::new(0),
        }
    }

    /// The probe index sequence for `shape`: double hashing from the
    /// two halves of the stable 64-bit shape hash.
    fn probe(&self, shape: &GemmShape, i: u32) -> usize {
        let h = shape.stable_hash();
        let h1 = h ^ (h >> 32);
        // Odd multiplier keeps the stride co-prime with power-of-two
        // table sizes; |1 guards the degenerate zero stride.
        let h2 = (h >> 17).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.counters.len() as u64) as usize
    }

    /// Count one occurrence of `shape` and return the *new* estimated
    /// occurrence count (the minimum probed counter after increment).
    pub fn observe(&self, shape: &GemmShape) -> u8 {
        self.observed.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
        let mut min = u8::MAX;
        for i in 0..self.hashes {
            let idx = self.probe(shape, i);
            let Some(counter) = self.counters.get(idx) else {
                continue;
            };
            // Saturating increment via CAS: counters never wrap back to
            // "rare" once a shape has earned its admission.
            let mut current = counter.load(Ordering::Relaxed); // atomic:role(counter)
            loop {
                if current == u8::MAX {
                    break;
                }
                // atomic:role(counter)
                match counter.compare_exchange_weak(
                    current,
                    current + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        current += 1;
                        break;
                    }
                    Err(seen) => current = seen,
                }
            }
            min = min.min(current);
        }
        min
    }

    /// Estimated occurrence count of `shape` (minimum probed counter;
    /// an over-estimate with Bloom false-positive probability).
    pub fn estimate(&self, shape: &GemmShape) -> u8 {
        let mut min = u8::MAX;
        for i in 0..self.hashes {
            let idx = self.probe(shape, i);
            if let Some(counter) = self.counters.get(idx) {
                min = min.min(counter.load(Ordering::Relaxed)); // atomic:role(counter)
            }
        }
        min
    }

    /// Total `observe` calls so far.
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// The configured counter-array size.
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }

    /// The classic Bloom false-positive bound for `n` distinct inserted
    /// keys: `(1 - e^(-k·n/m))^k`. A query for a never-seen shape reads
    /// a non-zero minimum counter with at most this probability.
    pub fn false_positive_bound(&self, n: u64) -> f64 {
        let m = self.counters.len() as f64;
        let k = self.hashes as f64;
        (1.0 - (-k * n as f64 / m).exp()).powf(k)
    }
}

/// Knobs for the capacity-bounded cache mode
/// ([`ShardedCache::bounded`]).
#[derive(Debug, Clone, Copy)]
pub struct BoundedCacheConfig {
    /// Maximum live entries across all shards (split evenly per shard,
    /// at least one per shard).
    pub capacity: usize,
    /// Counting-Bloom counter slots fronting admission.
    pub bloom_counters: usize,
    /// Bloom probe count `k`.
    pub bloom_hashes: u32,
    /// Occurrences a shape must accumulate before it earns a cache
    /// slot. 1 admits on first sight (plain bounded LRU); 2 filters
    /// one-hit wonders.
    pub admit_threshold: u8,
}

impl Default for BoundedCacheConfig {
    fn default() -> Self {
        BoundedCacheConfig {
            capacity: 4096,
            bloom_counters: 1 << 16,
            bloom_hashes: 4,
            admit_threshold: 2,
        }
    }
}

/// One cached decision, stamped with the cache generation it was made
/// under (entries from older generations are treated as absent) and an
/// LRU timestamp touched on every live read.
#[derive(Debug)]
struct CacheEntry {
    generation: u64,
    config_index: usize,
    last_used: AtomicU64,
}

/// One independent slice of the cache: its map plus the LRU tick
/// counter its entries are stamped from.
#[derive(Debug)]
struct Shard {
    map: RwLock<HashMap<GemmShape, CacheEntry>>,
    tick: AtomicU64,
}

/// A sharded concurrent map from GEMM shape to the chosen global
/// configuration index.
///
/// Two modes:
///
/// * **Unbounded** ([`ShardedCache::new`]) — the original serving
///   cache: every distinct shape is memoised forever. Right when the
///   workload is a fixed model zoo.
/// * **Bounded** ([`ShardedCache::bounded`]) — a hard capacity with
///   per-shard LRU eviction and a [`CountingBloom`] admission filter,
///   so an unbounded stream of *distinct* shapes (a million-tenant
///   ingress) cannot grow memory without bound. LRU (rather than
///   CLOCK) is deliberate: its stack property makes hit rates
///   monotone in capacity, which `tests/ingress_serving.rs` pins.
///
/// Invalidation comes in two flavours: [`ShardedCache::clear`] drops
/// entries eagerly (one write lock per shard), while
/// [`ShardedCache::bump_generation`] is an O(1) atomic increment that
/// makes every existing entry stale at once — the drift path in
/// [`crate::online`] uses it so a device-profile shift can invalidate
/// thousands of cached decisions without stalling concurrent readers.
/// In bounded mode stale entries still occupy their slot (the bound is
/// a *memory* bound) but are evicted preferentially.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Shard>,
    generation: AtomicU64,
    /// Lock-free open-addressed L1 in front of the shards: the decide
    /// fast path ([`CachedSelector::decide`]) probes it before touching
    /// any lock. Entries are generation-tagged, so `bump_generation`
    /// invalidates it for free; `clear`/`restore_state` (which change
    /// contents without advancing the generation) unpublish it
    /// explicitly.
    fast: crate::decide::ShapeTable,
    /// Live-entry capacity per shard; 0 means unbounded.
    per_shard_capacity: usize,
    bloom: Option<CountingBloom>,
    admit_threshold: u8,
    evictions: AtomicU64,
    admission_rejects: AtomicU64,
}

impl ShardedCache {
    /// Create an unbounded cache with `n_shards` independent shards.
    pub fn new(n_shards: usize) -> Self {
        let n = n_shards.max(1);
        ShardedCache {
            shards: (0..n)
                .map(|_| Shard {
                    map: RwLock::new(HashMap::new()),
                    tick: AtomicU64::new(0),
                })
                .collect(),
            generation: AtomicU64::new(0),
            fast: crate::decide::ShapeTable::new(),
            per_shard_capacity: 0,
            bloom: None,
            admit_threshold: 1,
            evictions: AtomicU64::new(0),
            admission_rejects: AtomicU64::new(0),
        }
    }

    /// Create a capacity-bounded cache: at most `config.capacity`
    /// entries total (split over `n_shards`), LRU-evicting, fronted by
    /// a counting-Bloom admission filter.
    pub fn bounded(n_shards: usize, config: BoundedCacheConfig) -> Self {
        let mut cache = Self::new(n_shards);
        let n = cache.shards.len();
        cache.per_shard_capacity = (config.capacity / n).max(1);
        cache.bloom = Some(CountingBloom::new(
            config.bloom_counters,
            config.bloom_hashes,
        ));
        cache.admit_threshold = config.admit_threshold.max(1);
        cache
    }

    fn shard_of(&self, shape: &GemmShape) -> &Shard {
        // stable_hash is FNV-style; fold the high bits in so shard
        // choice isn't at the mercy of the low bits alone.
        let h = shape.stable_hash();
        let idx = ((h ^ (h >> 32)) as usize) % self.shards.len();
        // lint:allow(no-index) idx is reduced modulo shards.len() above
        &self.shards[idx]
    }

    /// Look up a cached decision (read lock on one shard only). Entries
    /// written before the last [`ShardedCache::bump_generation`] read as
    /// absent. A live hit refreshes the entry's LRU stamp.
    pub fn get(&self, shape: &GemmShape) -> Option<usize> {
        let generation = self.generation.load(Ordering::Acquire); // atomic:role(publish)
        let shard = self.shard_of(shape);
        let map = shard.map.read();
        let entry = map.get(shape).filter(|e| e.generation == generation)?;
        // atomic:role(tick)
        entry.last_used.store(
            shard.tick.fetch_add(1, Ordering::Relaxed) + 1, // atomic:role(tick)
            Ordering::Relaxed,
        );
        Some(entry.config_index)
    }

    /// Store a decision under the current generation. Returns the
    /// previous live value, if any (stale entries count as absent).
    ///
    /// In bounded mode a *new* shape must first clear the Bloom
    /// admission threshold (its decision is simply not memoised until
    /// it has recurred enough), and an admitted insert into a full
    /// shard evicts the least-recently-used entry — stale-generation
    /// entries first.
    pub fn insert(&self, shape: GemmShape, config_index: usize) -> Option<usize> {
        let generation = self.generation.load(Ordering::Acquire); // atomic:role(publish)
        let shard = self.shard_of(&shape);
        let mut map = shard.map.write();
        let tick = shard.tick.fetch_add(1, Ordering::Relaxed) + 1; // atomic:role(tick)
        if let Some(entry) = map.get_mut(&shape) {
            let previous = (entry.generation == generation).then_some(entry.config_index);
            if previous != Some(config_index) {
                // Keep the L1 coherent with an out-of-band overwrite:
                // it must never serve a decision the shards replaced.
                self.fast.invalidate_key(shape.stable_hash());
            }
            entry.generation = generation;
            entry.config_index = config_index;
            entry.last_used.store(tick, Ordering::Relaxed); // atomic:role(tick)
            return previous;
        }
        if let Some(bloom) = &self.bloom {
            if bloom.observe(&shape) < self.admit_threshold {
                self.admission_rejects.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
                return None;
            }
        }
        if self.per_shard_capacity > 0 && map.len() >= self.per_shard_capacity {
            self.evict_one(&mut map, generation);
        }
        map.insert(
            shape,
            CacheEntry {
                generation,
                config_index,
                last_used: AtomicU64::new(tick),
            },
        );
        None
    }

    /// Remove the best eviction victim from `map`: any stale-generation
    /// entry if one exists, else the least-recently-used live entry.
    fn evict_one(&self, map: &mut HashMap<GemmShape, CacheEntry>, generation: u64) {
        let victim = map
            .iter()
            .map(|(shape, entry)| {
                let stale = entry.generation != generation;
                // Stale entries sort before every live one.
                let key = (!stale, entry.last_used.load(Ordering::Relaxed)); // atomic:role(tick)
                (*shape, key)
            })
            .min_by(|a, b| a.1.cmp(&b.1))
            .map(|(shape, _)| shape);
        if let Some(shape) = victim {
            map.remove(&shape);
            self.evictions.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
        }
    }

    /// Number of distinct shapes cached across all shards (current
    /// generation only).
    pub fn len(&self) -> usize {
        let generation = self.generation.load(Ordering::Acquire); // atomic:role(publish)
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .read()
                    .values()
                    .filter(|e| e.generation == generation)
                    .count()
            })
            .sum()
    }

    /// Total entries held, live *and* stale — the number the capacity
    /// bound actually constrains.
    pub fn footprint(&self) -> usize {
        self.shards.iter().map(|s| s.map.read().len()).sum()
    }

    /// Whether no live decision is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached decision (e.g. after retraining the selector).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.map.write().clear();
        }
        // The generation did not advance, so the L1's generation tags
        // would still read as live: unpublish it explicitly.
        self.fast.invalidate_all();
    }

    /// Probe the lock-free L1 for `shape`'s decision under the live
    /// generation: `(config_u16, shipped_slot)` on a hit.
    #[inline]
    pub(crate) fn l1_probe(&self, shape: &GemmShape) -> Option<(u16, u16)> {
        let generation = self.generation.load(Ordering::Acquire); // atomic:role(publish)
        self.fast.probe(shape.stable_hash(), generation)
    }

    /// Publish `shape`'s decision into the L1 under the live
    /// generation (`slot` is the shipped-set slot, or
    /// [`crate::decide::NO_SLOT`]).
    pub(crate) fn l1_install(&self, shape: &GemmShape, config: u16, slot: u16) {
        let generation = self.generation.load(Ordering::Acquire); // atomic:role(publish)
        self.fast
            .install(shape.stable_hash(), generation, config, slot);
    }

    /// The L1 decision table (probe-length introspection for the
    /// deterministic bench proxy).
    pub fn fast_table(&self) -> &crate::decide::ShapeTable {
        &self.fast
    }

    /// Invalidate every cached decision in O(1) by advancing the cache
    /// generation. Stale entries are filtered on read and overwritten on
    /// the next insert for their shape; no lock is taken.
    pub fn bump_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1 // atomic:role(publish)
    }

    /// The current cache generation (starts at 0, advanced by
    /// [`ShardedCache::bump_generation`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire) // atomic:role(publish)
    }

    /// The configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The total entry capacity, or `None` in unbounded mode.
    pub fn capacity(&self) -> Option<usize> {
        (self.per_shard_capacity > 0).then(|| self.per_shard_capacity * self.shards.len())
    }

    /// Entries evicted to make room (0 in unbounded mode).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Inserts the Bloom admission filter rejected (the shape had not
    /// yet recurred `admit_threshold` times).
    pub fn admission_rejects(&self) -> u64 {
        self.admission_rejects.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// The Bloom admission filter, when in bounded mode.
    pub fn bloom(&self) -> Option<&CountingBloom> {
        self.bloom.as_ref()
    }

    /// Export the warm set — current-generation entries with their LRU
    /// stamps, per-shard ticks, and the Bloom admission counters — for
    /// `core::persist` snapshots. Entries are sorted by stable shape
    /// hash so the encoding (and hence the section CRC) is
    /// deterministic for a given cache state.
    pub fn export_state(&self) -> crate::persist::CacheState {
        let generation = self.generation.load(Ordering::Acquire); // atomic:role(publish)
        let shards = self
            .shards
            .iter()
            .map(|shard| {
                let map = shard.map.read();
                let mut entries: Vec<crate::persist::CacheEntryState> = map
                    .iter()
                    .filter(|(_, e)| e.generation == generation)
                    .map(|(shape, e)| crate::persist::CacheEntryState {
                        shape: *shape,
                        config_index: e.config_index,
                        last_used: e.last_used.load(Ordering::Relaxed), // atomic:role(tick)
                    })
                    .collect();
                entries.sort_by_key(|e| e.shape.stable_hash());
                crate::persist::CacheShardState {
                    tick: shard.tick.load(Ordering::Relaxed), // atomic:role(tick)
                    entries,
                }
            })
            .collect();
        let bloom = self.bloom.as_ref().map(|b| crate::persist::BloomState {
            hashes: b.hashes,
            observed: b.observed(),
            counters: b
                .counters
                .iter()
                .map(|c| c.load(Ordering::Relaxed) as u64) // atomic:role(counter)
                .collect(),
        });
        crate::persist::CacheState {
            generation,
            shards,
            bloom,
        }
    }

    /// Re-warm the cache from an exported state. The snapshot
    /// generation must not be behind the live one (a drift trip after
    /// capture must not be undone); entries whose configuration is no
    /// longer in `shipped` are skipped, as are entries that would
    /// overflow a bounded shard (restore never evicts live entries).
    /// Entries re-route through the *current* shard function, so a
    /// snapshot taken under a different shard count still restores.
    /// Bloom counters apply only when the live filter has the same
    /// geometry; otherwise they are left cold and
    /// [`crate::persist::CacheRestoreStats::bloom_restored`] is false.
    // lint:allow-fn(no-alloc) snapshot restore is a cold startup path
    pub fn restore_state(
        &self,
        state: &crate::persist::CacheState,
        shipped: &[usize],
    ) -> std::result::Result<crate::persist::CacheRestoreStats, String> {
        let live = self.generation.load(Ordering::Acquire); // atomic:role(publish)
        if state.generation < live {
            return Err(format!(
                "cache generation regression: snapshot {} < live {}",
                state.generation, live
            ));
        }
        // Restore may keep the generation numerically equal while
        // replacing the cached decisions wholesale; the L1 must not
        // carry pre-restore picks across.
        self.fast.invalidate_all();
        self.generation.store(state.generation, Ordering::Release); // atomic:role(publish)
        let max_tick = state.shards.iter().map(|s| s.tick).max().unwrap_or(0);
        for shard in &self.shards {
            let current = shard.tick.load(Ordering::Relaxed); // atomic:role(tick)
            shard.tick.store(current.max(max_tick), Ordering::Relaxed); // atomic:role(tick)
        }
        let mut restored = 0u64;
        let mut skipped = 0u64;
        for saved_shard in &state.shards {
            for entry in &saved_shard.entries {
                if !shipped.contains(&entry.config_index) {
                    skipped += 1;
                    continue;
                }
                let shard = self.shard_of(&entry.shape);
                let mut map = shard.map.write();
                if self.per_shard_capacity > 0
                    && map.len() >= self.per_shard_capacity
                    && !map.contains_key(&entry.shape)
                {
                    skipped += 1;
                    continue;
                }
                map.insert(
                    entry.shape,
                    CacheEntry {
                        generation: state.generation,
                        config_index: entry.config_index,
                        last_used: AtomicU64::new(entry.last_used),
                    },
                );
                restored += 1;
            }
        }
        let bloom_restored = match (&self.bloom, &state.bloom) {
            (Some(live), Some(saved))
                if live.counters.len() == saved.counters.len() && live.hashes == saved.hashes =>
            {
                for (counter, &value) in live.counters.iter().zip(&saved.counters) {
                    // atomic:role(counter)
                    counter.store(value.min(u8::MAX as u64) as u8, Ordering::Relaxed);
                }
                live.observed.store(saved.observed, Ordering::Relaxed); // atomic:role(counter)
                true
            }
            (None, None) => true,
            _ => false,
        };
        Ok(crate::persist::CacheRestoreStats {
            entries_restored: restored,
            entries_skipped: skipped,
            bloom_restored,
        })
    }
}

/// Number of log2 latency buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds, so 64 buckets span every expressible
/// `u64` latency.
pub const LATENCY_BUCKETS: usize = 64;

/// A fixed-bucket log2 latency histogram over lock-free atomics.
///
/// The record path is two atomic increments and zero allocation —
/// cheap enough for every request on the ingress hot path (and
/// `hotpath_lint`-clean). The bucket increment is relaxed; the `count`
/// increment *releases* it, and quantile reads load `count` with
/// acquire, so a reader can never observe more counted samples than
/// bucketed ones (the `analyze::interleave` latency-histogram model
/// checks exactly this invariant — with both increments relaxed, a
/// reader could fall off the cumulative walk and return the `f64::MAX`
/// sentinel). Quantiles walk the 64 bucket counters and interpolate
/// linearly inside the winning bucket, which bounds the error by the
/// bucket's width (a factor of two — plenty for p50/p99 SLO
/// telemetry).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..LATENCY_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
        }
    }

    /// Record one sample of `nanos` (0 is clamped to 1). Lock-free,
    /// allocation-free. The release on `count` publishes the bucket
    /// increment to acquire readers.
    pub fn record(&self, nanos: u64) {
        let idx = 63 - nanos.max(1).leading_zeros() as usize;
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
            self.count.fetch_add(1, Ordering::Release); // atomic:role(publish)
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire) // atomic:role(publish)
    }

    /// The `q`-quantile latency in nanoseconds (`q` in `[0, 1]`),
    /// linearly interpolated within the winning bucket; 0 with no
    /// samples.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed); // atomic:role(counter)
            if n == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += n;
            if (cumulative as f64) >= target {
                let lower = (1u64 << i) as f64;
                let width = lower; // bucket spans [2^i, 2^(i+1))
                let frac = (target - before as f64) / n as f64;
                return lower + frac.clamp(0.0, 1.0) * width;
            }
        }
        // Unreachable with a consistent count; report the top edge.
        f64::MAX
    }

    /// Median latency in nanoseconds.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// The raw bucket counts (`LATENCY_BUCKETS` entries; bucket `i`
    /// spans `[2^i, 2^(i+1))` ns).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed)) // atomic:role(counter)
            .collect()
    }

    /// Overwrite the histogram from saved bucket counts (the snapshot
    /// restore path). Returns false — leaving the histogram untouched —
    /// unless `counts` has exactly [`LATENCY_BUCKETS`] entries. The
    /// total is recomputed from the buckets (saturating), keeping
    /// quantile reads internally consistent whatever the counts were.
    pub fn restore_counts(&self, counts: &[u64]) -> bool {
        if counts.len() != self.buckets.len() {
            return false;
        }
        let mut total = 0u64;
        for (bucket, &n) in self.buckets.iter().zip(counts) {
            bucket.store(n, Ordering::Relaxed); // atomic:role(counter)
            total = total.saturating_add(n);
        }
        self.count.store(total, Ordering::Release); // atomic:role(publish)
        true
    }
}

/// Lock-free counters describing the serving layer's behaviour.
///
/// All counters are monotonic and updated with relaxed atomics: the
/// numbers are diagnostics, not synchronisation points. `hits + misses`
/// always equals the total number of `select` calls that completed.
#[derive(Debug)]
pub struct SelectionTelemetry {
    hits: AtomicU64,
    misses: AtomicU64,
    hit_nanos: AtomicU64,
    miss_nanos: AtomicU64,
    /// One slot per shipped configuration, in `Selector::configs()`
    /// order, counting how often each was picked.
    picks: Vec<AtomicU64>,
    /// Global config index per slot (frozen copy of the shipped set).
    shipped: Vec<usize>,
    // --- resilient-serving counters (all zero outside a
    // `resilient::ResilientExecutor`) ---
    resilient_launches: AtomicU64,
    launch_failures: AtomicU64,
    retries: AtomicU64,
    breaker_trips: AtomicU64,
    quarantine_skips: AtomicU64,
    fallback_next_best: AtomicU64,
    fallback_reference: AtomicU64,
    fallback_skipped_invalid: AtomicU64,
    // --- online-adaptation counters (all zero without an
    // `online::OnlineSelector`) ---
    reward_updates: AtomicU64,
    drift_events: AtomicU64,
    adaptive_picks: AtomicU64,
    /// Rewards discarded because they were measured under an older
    /// selector generation than the one live when they arrived (the
    /// stale-reward-poisoning guard in `core::online`).
    stale_rewards_dropped: AtomicU64,
    /// Wall-clock decision latency (cache hit or model run), log2
    /// buckets.
    decision_latency: LatencyHistogram,
}

impl SelectionTelemetry {
    // lint:allow-fn(no-alloc) constructed once per selector, not per decision
    fn new(shipped: &[usize]) -> Self {
        SelectionTelemetry {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hit_nanos: AtomicU64::new(0),
            miss_nanos: AtomicU64::new(0),
            picks: shipped.iter().map(|_| AtomicU64::new(0)).collect(),
            shipped: shipped.to_vec(),
            resilient_launches: AtomicU64::new(0),
            launch_failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            quarantine_skips: AtomicU64::new(0),
            fallback_next_best: AtomicU64::new(0),
            fallback_reference: AtomicU64::new(0),
            fallback_skipped_invalid: AtomicU64::new(0),
            reward_updates: AtomicU64::new(0),
            drift_events: AtomicU64::new(0),
            adaptive_picks: AtomicU64::new(0),
            stale_rewards_dropped: AtomicU64::new(0),
            decision_latency: LatencyHistogram::new(),
        }
    }

    pub(crate) fn record_stale_reward_dropped(&self) {
        self.stale_rewards_dropped.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    pub(crate) fn record_reward_update(&self) {
        self.reward_updates.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    pub(crate) fn record_drift_event(&self) {
        self.drift_events.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    pub(crate) fn record_adaptive_pick(&self) {
        self.adaptive_picks.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    pub(crate) fn record_resilient_launch(&self) {
        self.resilient_launches.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    pub(crate) fn record_launch_failure(&self) {
        self.launch_failures.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    pub(crate) fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    pub(crate) fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    pub(crate) fn record_quarantine_skip(&self) {
        self.quarantine_skips.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    pub(crate) fn record_fallback_next_best(&self) {
        self.fallback_next_best.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    pub(crate) fn record_fallback_reference(&self) {
        self.fallback_reference.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    pub(crate) fn record_fallback_skipped_invalid(&self) {
        self.fallback_skipped_invalid
            .fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
    }

    fn record(&self, hit: bool, nanos: u64, config_index: usize) {
        self.decision_latency.record(nanos);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
            self.hit_nanos.fetch_add(nanos, Ordering::Relaxed); // atomic:role(counter)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
            self.miss_nanos.fetch_add(nanos, Ordering::Relaxed); // atomic:role(counter)
        }
        if let Some(slot) = self.shipped.iter().position(|&c| c == config_index) {
            // lint:allow(no-index) slot comes from position() over picks' twin
            self.picks[slot].fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
        }
    }

    /// The fast-path hit record: one hit, one pick-slot bump, no
    /// latency sample (the decide path deliberately carries no
    /// `Instant`; latency is sampled per batch instead). `slot` is the
    /// shipped-set position carried in the L1 entry —
    /// [`crate::decide::NO_SLOT`] bumps no pick counter, exactly like
    /// a non-shipped pick in [`SelectionTelemetry::record`].
    #[inline]
    pub(crate) fn record_fast_hit(&self, slot: u16) {
        self.hits.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
        if let Some(pick) = self.picks.get(slot as usize) {
            pick.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
        }
    }

    /// The shipped-set slot of `config_index`, or
    /// [`crate::decide::NO_SLOT`]. Runs the linear scan the fast path
    /// avoids — called once per L1 install (the miss path), never per
    /// hit.
    pub(crate) fn shipped_slot(&self, config_index: usize) -> u16 {
        self.shipped
            .iter()
            .position(|&c| c == config_index)
            .and_then(|slot| u16::try_from(slot).ok())
            .unwrap_or(crate::decide::NO_SLOT)
    }

    /// Flush a `decide_batch`'s locally accumulated telemetry in one
    /// pass: `hits` L1 hits, `hit_nanos` of amortised wall time (0 for
    /// mixed batches — misses already self-accounted through
    /// [`SelectionTelemetry::record`]), one latency-histogram sample of
    /// the amortised per-pick cost, and the per-slot pick counts.
    pub(crate) fn flush_fast_batch(&self, hits: u64, hit_nanos: u64, picks: &[u32]) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed); // atomic:role(counter)
        }
        if hit_nanos > 0 {
            self.hit_nanos.fetch_add(hit_nanos, Ordering::Relaxed); // atomic:role(counter)
        }
        for (pick, &n) in self.picks.iter().zip(picks) {
            if n > 0 {
                pick.fetch_add(n as u64, Ordering::Relaxed); // atomic:role(counter)
            }
        }
    }

    /// Record one amortised per-pick latency sample for a batch.
    pub(crate) fn record_batch_latency(&self, per_pick_nanos: u64) {
        self.decision_latency.record(per_pick_nanos);
    }

    /// Bump one pick-slot counter directly (overflow path for shipped
    /// sets larger than the batch's stack accumulator; a
    /// [`crate::decide::NO_SLOT`] sentinel bumps nothing).
    #[inline]
    pub(crate) fn bump_pick(&self, slot: u16) {
        if let Some(pick) = self.picks.get(slot as usize) {
            pick.fetch_add(1, Ordering::Relaxed); // atomic:role(counter)
        }
    }

    /// Selections answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Selections that ran the model.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Total completed selections (`hits + misses`).
    pub fn total(&self) -> u64 {
        self.hits() + self.misses()
    }

    /// Cache hit rate in `[0, 1]` (0 when nothing was selected yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Mean latency of cache hits, in nanoseconds.
    pub fn mean_hit_nanos(&self) -> f64 {
        let hits = self.hits();
        if hits == 0 {
            0.0
        } else {
            self.hit_nanos.load(Ordering::Relaxed) as f64 / hits as f64 // atomic:role(counter)
        }
    }

    /// Mean latency of cache misses (model inference), in nanoseconds.
    pub fn mean_miss_nanos(&self) -> f64 {
        let misses = self.misses();
        if misses == 0 {
            0.0
        } else {
            self.miss_nanos.load(Ordering::Relaxed) as f64 / misses as f64 // atomic:role(counter)
        }
    }

    /// Launches completed through the resilient executor.
    pub fn resilient_launches(&self) -> u64 {
        self.resilient_launches.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Individual failed launch attempts the executor absorbed.
    pub fn launch_failures(&self) -> u64 {
        self.launch_failures.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Retries of the *same* configuration after a transient fault.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Circuit-breaker transitions into the open state.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker_trips.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Candidate configurations skipped because their breaker was open.
    pub fn quarantine_skips(&self) -> u64 {
        self.quarantine_skips.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Launches served by a next-best shipped configuration.
    pub fn fallback_next_best(&self) -> u64 {
        self.fallback_next_best.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Launches degraded all the way to the reference GEMM.
    pub fn fallback_reference(&self) -> u64 {
        self.fallback_reference.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Configurations excluded from the fallback chain (or skipped as a
    /// primary pick) because static analysis proved them invalid or
    /// dominated on the serving device.
    pub fn fallback_skipped_invalid(&self) -> u64 {
        self.fallback_skipped_invalid.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Measured launch outcomes fed back into the online bandit.
    pub fn reward_updates(&self) -> u64 {
        self.reward_updates.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Drift-detector trips (each re-ranks the bandit and bumps the
    /// decision-cache generation).
    pub fn drift_events(&self) -> u64 {
        self.drift_events.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Primary picks made by the adaptive (post-drift) stage rather
    /// than the offline classifier. These bypass the shape cache, so
    /// they are *not* part of `hits + misses`.
    pub fn adaptive_picks(&self) -> u64 {
        self.adaptive_picks.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// Rewards discarded for carrying a stale selector generation.
    pub fn stale_rewards_dropped(&self) -> u64 {
        self.stale_rewards_dropped.load(Ordering::Relaxed) // atomic:role(counter)
    }

    /// The decision-latency histogram (cache hits and model runs).
    pub fn decision_latency(&self) -> &LatencyHistogram {
        &self.decision_latency
    }

    /// `(global config index, times picked)` per shipped configuration,
    /// in shipped order.
    pub fn picks(&self) -> Vec<(usize, u64)> {
        self.shipped
            .iter()
            .zip(&self.picks)
            .map(|(&c, n)| (c, n.load(Ordering::Relaxed))) // atomic:role(counter)
            .collect()
    }

    /// An owned, consistent-enough copy for reporting/serialisation.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            hits: self.hits(),
            misses: self.misses(),
            mean_hit_nanos: self.mean_hit_nanos(),
            mean_miss_nanos: self.mean_miss_nanos(),
            picks: self
                .picks()
                .into_iter()
                .map(|(config_index, count)| PickCount {
                    config_index,
                    count,
                })
                .collect(),
            resilient_launches: self.resilient_launches(),
            launch_failures: self.launch_failures(),
            retries: self.retries(),
            breaker_trips: self.breaker_trips(),
            quarantine_skips: self.quarantine_skips(),
            fallback_next_best: self.fallback_next_best(),
            fallback_reference: self.fallback_reference(),
            fallback_skipped_invalid: self.fallback_skipped_invalid(),
            reward_updates: self.reward_updates(),
            drift_events: self.drift_events(),
            adaptive_picks: self.adaptive_picks(),
            stale_rewards_dropped: self.stale_rewards_dropped(),
            decision_p50_ns: self.decision_latency.p50(),
            decision_p99_ns: self.decision_latency.p99(),
        }
    }

    /// Export every counter and the latency histogram for
    /// `core::persist` snapshots.
    // lint:allow-fn(no-alloc) snapshot export runs off the decide path
    pub fn export_state(&self) -> crate::persist::TelemetryState {
        crate::persist::TelemetryState {
            hits: self.hits(),
            misses: self.misses(),
            hit_nanos: self.hit_nanos.load(Ordering::Relaxed), // atomic:role(counter)
            miss_nanos: self.miss_nanos.load(Ordering::Relaxed), // atomic:role(counter)
            shipped: self.shipped.clone(),
            picks: self
                .picks
                .iter()
                .map(|p| p.load(Ordering::Relaxed)) // atomic:role(counter)
                .collect(),
            resilient_launches: self.resilient_launches(),
            launch_failures: self.launch_failures(),
            retries: self.retries(),
            breaker_trips: self.breaker_trips(),
            quarantine_skips: self.quarantine_skips(),
            fallback_next_best: self.fallback_next_best(),
            fallback_reference: self.fallback_reference(),
            fallback_skipped_invalid: self.fallback_skipped_invalid(),
            reward_updates: self.reward_updates(),
            drift_events: self.drift_events(),
            adaptive_picks: self.adaptive_picks(),
            stale_rewards_dropped: self.stale_rewards_dropped(),
            latency_buckets: self.decision_latency.bucket_counts(),
        }
    }

    /// Overwrite every counter from an exported state, so restart-
    /// spanning reports stay cumulative. The snapshot's shipped set and
    /// histogram geometry must match the live block exactly.
    // lint:allow-fn(no-alloc) snapshot restore is a cold startup path
    pub fn restore_state(
        &self,
        state: &crate::persist::TelemetryState,
    ) -> std::result::Result<(), String> {
        if state.shipped != self.shipped || state.picks.len() != self.picks.len() {
            return Err(format!(
                "telemetry shipped-set mismatch: snapshot has {} slots, live block {}",
                state.picks.len(),
                self.picks.len()
            ));
        }
        if !self.decision_latency.restore_counts(&state.latency_buckets) {
            return Err(format!(
                "latency histogram geometry mismatch: snapshot has {} buckets, live {}",
                state.latency_buckets.len(),
                LATENCY_BUCKETS
            ));
        }
        self.hits.store(state.hits, Ordering::Relaxed); // atomic:role(counter)
        self.misses.store(state.misses, Ordering::Relaxed); // atomic:role(counter)
        self.hit_nanos.store(state.hit_nanos, Ordering::Relaxed); // atomic:role(counter)
        self.miss_nanos.store(state.miss_nanos, Ordering::Relaxed); // atomic:role(counter)
        for (pick, &n) in self.picks.iter().zip(&state.picks) {
            pick.store(n, Ordering::Relaxed); // atomic:role(counter)
        }
        self.resilient_launches
            .store(state.resilient_launches, Ordering::Relaxed); // atomic:role(counter)
        self.launch_failures
            .store(state.launch_failures, Ordering::Relaxed); // atomic:role(counter)
        self.retries.store(state.retries, Ordering::Relaxed); // atomic:role(counter)
        self.breaker_trips
            .store(state.breaker_trips, Ordering::Relaxed); // atomic:role(counter)
        self.quarantine_skips
            .store(state.quarantine_skips, Ordering::Relaxed); // atomic:role(counter)
        self.fallback_next_best
            .store(state.fallback_next_best, Ordering::Relaxed); // atomic:role(counter)
        self.fallback_reference
            .store(state.fallback_reference, Ordering::Relaxed); // atomic:role(counter)
        self.fallback_skipped_invalid
            .store(state.fallback_skipped_invalid, Ordering::Relaxed); // atomic:role(counter)
        self.reward_updates
            .store(state.reward_updates, Ordering::Relaxed); // atomic:role(counter)
        self.drift_events
            .store(state.drift_events, Ordering::Relaxed); // atomic:role(counter)
        self.adaptive_picks
            .store(state.adaptive_picks, Ordering::Relaxed); // atomic:role(counter)
        self.stale_rewards_dropped
            .store(state.stale_rewards_dropped, Ordering::Relaxed); // atomic:role(counter)
        Ok(())
    }
}

/// How often one shipped configuration was chosen.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PickCount {
    /// Global kernel configuration index.
    pub config_index: usize,
    /// Number of selections that chose it.
    pub count: u64,
}

/// A point-in-time copy of [`SelectionTelemetry`], serialisable for
/// reports.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TelemetrySnapshot {
    /// Selections answered from the cache.
    pub hits: u64,
    /// Selections that ran the model.
    pub misses: u64,
    /// Mean cache-hit latency in nanoseconds.
    pub mean_hit_nanos: f64,
    /// Mean model-inference latency in nanoseconds.
    pub mean_miss_nanos: f64,
    /// Pick counts per shipped configuration.
    pub picks: Vec<PickCount>,
    /// Launches completed through the resilient executor.
    pub resilient_launches: u64,
    /// Individual failed launch attempts absorbed.
    pub launch_failures: u64,
    /// Same-configuration retries after transient faults.
    pub retries: u64,
    /// Circuit-breaker transitions into the open state.
    pub breaker_trips: u64,
    /// Candidates skipped while their breaker was open.
    pub quarantine_skips: u64,
    /// Launches served by a next-best shipped configuration.
    pub fallback_next_best: u64,
    /// Launches degraded to the reference GEMM.
    pub fallback_reference: u64,
    /// Configurations skipped because static analysis proved them
    /// invalid or dominated.
    pub fallback_skipped_invalid: u64,
    /// Measured launch outcomes fed back into the online bandit.
    pub reward_updates: u64,
    /// Drift-detector trips.
    pub drift_events: u64,
    /// Primary picks made by the adaptive (post-drift) stage.
    pub adaptive_picks: u64,
    /// Rewards discarded for carrying a stale selector generation.
    pub stale_rewards_dropped: u64,
    /// Median decision latency in nanoseconds (histogram estimate).
    pub decision_p50_ns: f64,
    /// 99th-percentile decision latency in nanoseconds (histogram
    /// estimate).
    pub decision_p99_ns: f64,
}

/// The outcome of one cached selection, for threading into launch
/// traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionOutcome {
    /// Global kernel configuration index chosen.
    pub config_index: usize,
    /// Whether the decision came from the cache.
    pub cache_hit: bool,
}

impl From<SelectionOutcome> for autokernel_sycl_sim::trace::LaunchDecision {
    fn from(o: SelectionOutcome) -> Self {
        autokernel_sycl_sim::trace::LaunchDecision::new(o.config_index, o.cache_hit)
    }
}

/// A [`Selector`] wrapped with the sharded decision cache and
/// telemetry. Cheap to share across threads (`&self` everywhere).
pub struct CachedSelector {
    selector: Arc<Selector>,
    cache: ShardedCache,
    telemetry: SelectionTelemetry,
}

impl CachedSelector {
    /// Wrap `selector` with a [`DEFAULT_SHARDS`]-way cache.
    pub fn new(selector: Arc<Selector>) -> Self {
        Self::with_shards(selector, DEFAULT_SHARDS)
    }

    /// Wrap `selector` with an explicit shard count.
    pub fn with_shards(selector: Arc<Selector>, n_shards: usize) -> Self {
        let telemetry = SelectionTelemetry::new(selector.configs());
        CachedSelector {
            selector,
            cache: ShardedCache::new(n_shards),
            telemetry,
        }
    }

    /// Wrap `selector` with a capacity-bounded, Bloom-admitted cache
    /// ([`ShardedCache::bounded`]) — the ingress-facing mode where the
    /// shape stream is unbounded and the decision cache must not be.
    pub fn with_bounded_cache(
        selector: Arc<Selector>,
        n_shards: usize,
        config: BoundedCacheConfig,
    ) -> Self {
        let telemetry = SelectionTelemetry::new(selector.configs());
        CachedSelector {
            selector,
            cache: ShardedCache::bounded(n_shards, config),
            telemetry,
        }
    }

    /// Select a configuration index for `shape`, memoised. Identical to
    /// [`Selector::select_shape`] in its results — only faster on
    /// repeated shapes.
    pub fn select(&self, shape: &GemmShape) -> Result<usize> {
        Ok(self.select_outcome(shape)?.config_index)
    }

    /// Like [`CachedSelector::select`], also reporting whether the
    /// decision came from the cache (for launch tracing).
    pub fn select_outcome(&self, shape: &GemmShape) -> Result<SelectionOutcome> {
        let start = Instant::now();
        if let Some(config_index) = self.cache.get(shape) {
            self.telemetry
                .record(true, start.elapsed().as_nanos() as u64, config_index);
            return Ok(SelectionOutcome {
                config_index,
                cache_hit: true,
            });
        }
        let config_index = self.selector.select_shape(shape)?;
        self.cache.insert(*shape, config_index);
        self.telemetry
            .record(false, start.elapsed().as_nanos() as u64, config_index);
        Ok(SelectionOutcome {
            config_index,
            cache_hit: false,
        })
    }

    /// Select for many shapes in parallel (rayon), through the cache.
    pub fn select_batch(&self, shapes: &[GemmShape]) -> Result<Vec<usize>> {
        shapes.par_iter().map(|s| self.select(s)).collect()
    }

    /// Decide a configuration for `shape` on the fast path: one
    /// generation load, a short open-addressed L1 probe and two relaxed
    /// counter bumps on the common (warm) pick — no lock, no `Instant`,
    /// no shipped-set scan. Returns the same configuration
    /// [`CachedSelector::select`] would (the L1 memoises `select`'s
    /// result under the live cache generation); the only telemetry
    /// difference is that L1 hits carry no per-decision latency sample
    /// (use [`CachedSelector::decide_batch`] for amortised sampling).
    #[inline]
    pub fn decide(&self, shape: &GemmShape) -> Result<u16> {
        if let Some((config, slot)) = self.cache.l1_probe(shape) {
            self.telemetry.record_fast_hit(slot);
            return Ok(config);
        }
        self.decide_slow(shape)
    }

    /// The decide miss path: run the full [`CachedSelector::select_outcome`]
    /// (model run or shard hit, self-accounted telemetry) and publish
    /// the decision into the L1 for subsequent picks.
    #[cold]
    fn decide_slow(&self, shape: &GemmShape) -> Result<u16> {
        let outcome = self.select_outcome(shape)?;
        let config = u16::try_from(outcome.config_index)
            .map_err(|_| crate::CoreError::BadConfigIndex(outcome.config_index))?;
        let slot = self.telemetry.shipped_slot(outcome.config_index);
        self.cache.l1_install(shape, config, slot);
        Ok(config)
    }

    /// Decide configurations for a chunk of shapes, amortising the
    /// telemetry atomics across the batch: hits and pick counts
    /// accumulate in stack locals and flush once, and a single
    /// `Instant` pair per batch yields one amortised per-pick latency
    /// sample instead of one clock read per decision. Writes one `u16`
    /// configuration index per shape into `out` (which must have the
    /// same length); misses fall through to the self-accounting slow
    /// path exactly as [`CachedSelector::decide`] does.
    pub fn decide_batch(&self, shapes: &[GemmShape], out: &mut [u16]) -> Result<()> {
        if shapes.len() != out.len() {
            // lint:allow(no-alloc) typed-error construction on the cold arity-mismatch arm
            return Err(crate::CoreError::Dataset(format!(
                "decide_batch arity mismatch: {} shapes, {} output slots",
                shapes.len(),
                out.len()
            )));
        }
        if shapes.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        let mut local_hits: u64 = 0;
        let mut local_picks = [0u32; crate::decide::MAX_SHIPPED_SLOTS];
        for (shape, decided) in shapes.iter().zip(out.iter_mut()) {
            if let Some((config, slot)) = self.cache.l1_probe(shape) {
                local_hits += 1;
                match local_picks.get_mut(slot as usize) {
                    Some(count) => *count += 1,
                    // Slots beyond the stack accumulator (and the
                    // NO_SLOT sentinel) flush directly.
                    None => self.telemetry.bump_pick(slot),
                }
                *decided = config;
            } else {
                *decided = self.decide_slow(shape)?;
            }
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        // Misses self-account their nanos inside `decide_slow`; only a
        // pure-hit batch attributes the batch wall time to `hit_nanos`
        // (the steady-state case the mean-hit metric describes).
        let all_hit_nanos = if local_hits == shapes.len() as u64 {
            elapsed
        } else {
            0
        };
        self.telemetry
            .flush_fast_batch(local_hits, all_hit_nanos, &local_picks);
        self.telemetry
            .record_batch_latency(elapsed / shapes.len() as u64);
        Ok(())
    }

    /// Run the model for every shape up front so later traffic is all
    /// cache hits. Warm-up counts as misses in the telemetry.
    pub fn warm(&self, shapes: &[GemmShape]) -> Result<()> {
        self.select_batch(shapes).map(|_| ())
    }

    /// The wrapped selector.
    pub fn selector(&self) -> &Selector {
        &self.selector
    }

    /// The live telemetry block.
    pub fn telemetry(&self) -> &SelectionTelemetry {
        &self.telemetry
    }

    /// Number of distinct shapes currently cached.
    pub fn cached_shapes(&self) -> usize {
        self.cache.len()
    }

    /// The underlying cache (for shard-level inspection).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Forget every cached decision, keeping telemetry history.
    pub fn invalidate(&self) {
        self.cache.clear();
    }

    /// Forget every cached decision in O(1) via a generation bump —
    /// the drift-invalidation path. Returns the new generation.
    pub fn invalidate_generation(&self) -> u64 {
        self.cache.bump_generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PerformanceDataset;
    use crate::prune::PruneMethod;
    use crate::select::{Selector, SelectorKind};
    use autokernel_sycl_sim::DeviceSpec;

    fn trained() -> Arc<Selector> {
        let shapes: Vec<(GemmShape, String)> = [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
            (32, 4096, 4096),
            (2, 2048, 1000),
            (6272, 576, 128),
            (1024, 1024, 1024),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect();
        let ds = PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = PruneMethod::TopN.select(&ds, &train, 5, 0).unwrap();
        Arc::new(Selector::train(SelectorKind::DecisionTree, &ds, &train, &configs, 0).unwrap())
    }

    #[test]
    fn cached_agrees_with_uncached() {
        let sel = trained();
        let cached = CachedSelector::new(Arc::clone(&sel));
        for shape in [
            GemmShape::new(64, 64, 64),
            GemmShape::new(300, 300, 300),
            GemmShape::new(7, 4096, 1000),
        ] {
            let direct = sel.select_shape(&shape).unwrap();
            assert_eq!(cached.select(&shape).unwrap(), direct);
            // Second call must come from the cache and still agree.
            assert_eq!(cached.select(&shape).unwrap(), direct);
        }
    }

    #[test]
    fn telemetry_counts_hits_misses_and_picks() {
        let cached = CachedSelector::new(trained());
        let shapes: Vec<GemmShape> = (1..=5).map(|i| GemmShape::new(i * 32, 128, 64)).collect();
        for shape in &shapes {
            cached.select(shape).unwrap();
        }
        for shape in &shapes {
            cached.select(shape).unwrap();
            cached.select(shape).unwrap();
        }
        let t = cached.telemetry();
        assert_eq!(t.misses(), 5);
        assert_eq!(t.hits(), 10);
        assert_eq!(t.total(), 15);
        assert!((t.hit_rate() - 10.0 / 15.0).abs() < 1e-12);
        let picked: u64 = t.picks().iter().map(|&(_, n)| n).sum();
        assert_eq!(picked, 15, "every selection lands in a shipped slot");
        assert_eq!(cached.cached_shapes(), 5);
    }

    #[test]
    fn outcome_reports_cache_hit_flag() {
        let cached = CachedSelector::new(trained());
        let shape = GemmShape::new(640, 640, 640);
        let first = cached.select_outcome(&shape).unwrap();
        let second = cached.select_outcome(&shape).unwrap();
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.config_index, second.config_index);
    }

    #[test]
    fn invalidate_forces_remodelling() {
        let cached = CachedSelector::new(trained());
        let shape = GemmShape::new(96, 96, 96);
        cached.select(&shape).unwrap();
        assert_eq!(cached.cached_shapes(), 1);
        cached.invalidate();
        assert_eq!(cached.cached_shapes(), 0);
        let again = cached.select_outcome(&shape).unwrap();
        assert!(!again.cache_hit);
        assert_eq!(cached.telemetry().misses(), 2);
    }

    #[test]
    fn batch_matches_singles_and_warms_cache() {
        let sel = trained();
        let cached = CachedSelector::with_shards(Arc::clone(&sel), 4);
        let shapes: Vec<GemmShape> = (1..=12).map(|i| GemmShape::new(i * 17, 256, 96)).collect();
        let batch = cached.select_batch(&shapes).unwrap();
        for (shape, &idx) in shapes.iter().zip(&batch) {
            assert_eq!(sel.select_shape(shape).unwrap(), idx);
        }
        assert_eq!(cached.cached_shapes(), shapes.len());
        // Everything is warm now: a second batch is pure hits.
        let before = cached.telemetry().hits();
        cached.select_batch(&shapes).unwrap();
        assert_eq!(cached.telemetry().hits(), before + shapes.len() as u64);
    }

    #[test]
    fn sharded_cache_basics() {
        let cache = ShardedCache::new(8);
        assert_eq!(cache.shard_count(), 8);
        assert!(cache.is_empty());
        let s = GemmShape::new(10, 20, 30);
        assert_eq!(cache.get(&s), None);
        assert_eq!(cache.insert(s, 42), None);
        assert_eq!(cache.insert(s, 43), Some(42));
        assert_eq!(cache.get(&s), Some(43));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let cache = ShardedCache::new(0);
        assert_eq!(cache.shard_count(), 1);
    }

    #[test]
    fn generation_bump_invalidates_without_locks() {
        let cache = ShardedCache::new(4);
        let a = GemmShape::new(10, 20, 30);
        let b = GemmShape::new(40, 50, 60);
        cache.insert(a, 1);
        cache.insert(b, 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.generation(), 0);

        assert_eq!(cache.bump_generation(), 1);
        assert_eq!(cache.get(&a), None, "stale entry reads as absent");
        assert_eq!(cache.get(&b), None);
        assert!(cache.is_empty());

        // Re-inserting under the new generation revives the slot; the
        // stale previous value does not leak out as "previous".
        assert_eq!(cache.insert(a, 7), None);
        assert_eq!(cache.get(&a), Some(7));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_generation_forces_remodelling() {
        let cached = CachedSelector::new(trained());
        let shape = GemmShape::new(96, 96, 96);
        cached.select(&shape).unwrap();
        assert_eq!(cached.cached_shapes(), 1);
        cached.invalidate_generation();
        assert_eq!(cached.cached_shapes(), 0);
        let again = cached.select_outcome(&shape).unwrap();
        assert!(!again.cache_hit, "stale decision must not be served");
    }

    #[test]
    fn snapshot_serialises() {
        let cached = CachedSelector::new(trained());
        cached.select(&GemmShape::new(50, 60, 70)).unwrap();
        let snap = cached.telemetry().snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.misses, 1);
        assert_eq!(back.picks.len(), cached.selector().configs().len());
    }
}
