//! Deployment of a trained decision-tree selector as plain Rust source —
//! the paper's argument that "decision trees can be implemented as a
//! series of nested if statements", making them the natural choice for
//! low-latency compute libraries.
//!
//! Two artefacts are produced from a [`crate::select::Selector`] holding
//! a tree:
//!
//! - [`CompiledTree`], a flat branch table semantically identical to the
//!   nested `if`s the source emitter writes (tests prove equivalence with
//!   the estimator), and
//! - [`emit_rust_source`], the human-readable Rust module a library
//!   would vendor.

use crate::select::{FeatureSpace, Selector};
use crate::{CoreError, Result};
use autokernel_gemm::{GemmShape, KernelConfig};
use autokernel_mlkit::tree::Node;
use serde::{Deserialize, Serialize};

/// One node of the flattened selector, mirroring the generated code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompiledNode {
    /// `if features[feature] <= threshold { goto left } else { goto right }`
    Branch {
        /// Feature tested (0 = log₂ m, 1 = log₂ k, 2 = log₂ n).
        feature: usize,
        /// Threshold in *standardised* feature space.
        threshold: f64,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
    /// Return this kernel-configuration index.
    Return(usize),
}

/// A flattened decision procedure, plus the feature representation
/// (space and standardisation constants) baked in at export time.
///
/// Serialisable: a library can persist the trained selector next to its
/// kernel binaries and load it at startup ([`CompiledTree::to_json`] /
/// [`CompiledTree::from_json`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledTree {
    nodes: Vec<CompiledNode>,
    space: FeatureSpace,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl CompiledTree {
    /// Flatten a trained decision-tree selector.
    ///
    /// Fails if `selector` is not a decision tree.
    pub fn from_selector(selector: &Selector) -> Result<CompiledTree> {
        let tree = selector
            .as_tree()
            .ok_or_else(|| CoreError::Dataset("selector is not a decision tree".into()))?;
        let fitted = tree.tree()?;
        let classes = tree.classes();
        let nodes = fitted
            .nodes()
            .iter()
            .map(|n| match n {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => CompiledNode::Branch {
                    feature: *feature,
                    threshold: *threshold,
                    left: *left,
                    right: *right,
                },
                Node::Leaf { value, .. } => {
                    let mut best = 0;
                    for (i, &v) in value.iter().enumerate() {
                        if v > value[best] {
                            best = i;
                        }
                    }
                    CompiledNode::Return(classes[best])
                }
            })
            .collect();
        let (means, stds) = match selector.scaler() {
            Some(s) => (s.means().to_vec(), s.stds().to_vec()),
            None => (vec![0.0; 3], vec![1.0; 3]),
        };
        Ok(CompiledTree {
            nodes,
            space: selector.feature_space(),
            means,
            stds,
        })
    }

    /// Execute the compiled decision procedure for a shape.
    pub fn select(&self, shape: &GemmShape) -> usize {
        let raw = match self.space {
            FeatureSpace::RawSizes => shape.features(),
            FeatureSpace::ScaledLog => shape.log_features(),
        };
        let f: Vec<f64> = raw
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect();
        let mut id = 0usize;
        loop {
            match &self.nodes[id] {
                CompiledNode::Return(cfg) => return *cfg,
                CompiledNode::Branch {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if f[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of branch nodes (the depth/size cost of the shipped code).
    pub fn n_branches(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, CompiledNode::Branch { .. }))
            .count()
    }

    /// Number of return leaves.
    pub fn n_returns(&self) -> usize {
        self.nodes.len() - self.n_branches()
    }

    /// Serialise for persistence alongside the compiled kernels.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("compiled tree serialises")
    }

    /// Load a tree persisted with [`CompiledTree::to_json`].
    pub fn from_json(s: &str) -> Result<CompiledTree> {
        serde_json::from_str(s).map_err(|e| CoreError::Dataset(e.to_string()))
    }
}

/// Emit the compiled tree as a self-contained Rust module: a
/// `select_kernel(m, k, n) -> usize` function of nested `if`s returning
/// a [`KernelConfig`] index, plus the config table as documentation.
pub fn emit_rust_source(tree: &CompiledTree, shipped: &[usize]) -> String {
    let mut out = String::new();
    out.push_str("// Generated by autokernel: runtime kernel selection as nested ifs.\n");
    out.push_str("// Shipped kernel configurations:\n");
    for &cfg in shipped {
        if let Some(c) = KernelConfig::from_index(cfg) {
            out.push_str(&format!("//   {cfg}: {c}\n"));
        }
    }
    out.push_str("\n/// Select a kernel-configuration index for a GEMM of shape (m, k, n).\n");
    out.push_str("pub fn select_kernel(m: usize, k: usize, n: usize) -> usize {\n");
    out.push_str("    let f = [\n");
    for (i, dim) in ["m", "k", "n"].iter().enumerate() {
        let expr = match tree.space {
            FeatureSpace::RawSizes => format!("{dim} as f64"),
            FeatureSpace::ScaledLog => format!("({dim} as f64).log2()"),
        };
        out.push_str(&format!(
            "        (({expr}) - {mean:?}) / {std:?},\n",
            mean = tree.means[i],
            std = tree.stds[i],
        ));
    }
    out.push_str("    ];\n");
    emit_node(tree, 0, 1, &mut out);
    out.push_str("}\n");
    out
}

fn emit_node(tree: &CompiledTree, id: usize, depth: usize, out: &mut String) {
    let pad = "    ".repeat(depth);
    match &tree.nodes[id] {
        CompiledNode::Return(cfg) => {
            out.push_str(&format!("{pad}{cfg}\n"));
        }
        CompiledNode::Branch {
            feature,
            threshold,
            left,
            right,
        } => {
            out.push_str(&format!("{pad}if f[{feature}] <= {threshold:?} {{\n"));
            emit_node(tree, *left, depth + 1, out);
            out.push_str(&format!("{pad}}} else {{\n"));
            emit_node(tree, *right, depth + 1, out);
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PerformanceDataset;
    use crate::prune::PruneMethod;
    use crate::select::SelectorKind;
    use autokernel_sycl_sim::DeviceSpec;

    fn trained() -> (PerformanceDataset, Selector, Vec<usize>) {
        let shapes: Vec<(GemmShape, String)> = [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect();
        let ds = PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = PruneMethod::TopN.select(&ds, &train, 4, 0).unwrap();
        let sel = Selector::train(SelectorKind::DecisionTree, &ds, &train, &configs, 0).unwrap();
        (ds, sel, configs)
    }

    #[test]
    fn compiled_tree_matches_estimator_on_training_shapes() {
        let (ds, sel, _) = trained();
        let compiled = CompiledTree::from_selector(&sel).unwrap();
        for shape in &ds.shapes {
            assert_eq!(compiled.select(shape), sel.select_shape(shape).unwrap());
        }
    }

    #[test]
    fn compiled_tree_matches_estimator_on_unseen_shapes() {
        let (_, sel, _) = trained();
        let compiled = CompiledTree::from_selector(&sel).unwrap();
        for (m, k, n) in [(100, 100, 100), (7, 3000, 11), (50000, 27, 64), (1, 1, 1)] {
            let shape = GemmShape::new(m, k, n);
            assert_eq!(compiled.select(&shape), sel.select_shape(&shape).unwrap());
        }
    }

    #[test]
    fn generated_source_is_wellformed() {
        let (_, sel, configs) = trained();
        let compiled = CompiledTree::from_selector(&sel).unwrap();
        let src = emit_rust_source(&compiled, &configs);
        assert!(src.contains("pub fn select_kernel"));
        assert_eq!(src.matches('{').count(), src.matches('}').count());
        // Every return value appears in the source.
        for &cfg in &configs {
            // At least the shipped-config comment block mentions it.
            assert!(
                src.contains(&format!("//   {cfg}:")),
                "missing {cfg} in:\n{src}"
            );
        }
        // Structure counts agree.
        assert_eq!(src.matches("if f[").count(), compiled.n_branches());
    }

    #[test]
    fn returns_are_shipped_configs() {
        let (_, sel, configs) = trained();
        let compiled = CompiledTree::from_selector(&sel).unwrap();
        for node in &compiled.nodes {
            if let CompiledNode::Return(cfg) = node {
                assert!(configs.contains(cfg));
            }
        }
        assert!(compiled.n_returns() >= 1);
    }

    #[test]
    fn json_persistence_roundtrip_preserves_decisions() {
        let (ds, sel, _) = trained();
        let compiled = CompiledTree::from_selector(&sel).unwrap();
        let loaded = CompiledTree::from_json(&compiled.to_json()).unwrap();
        assert_eq!(loaded.n_branches(), compiled.n_branches());
        for shape in &ds.shapes {
            assert_eq!(loaded.select(shape), compiled.select(shape));
        }
        assert!(CompiledTree::from_json("not json").is_err());
    }

    #[test]
    fn non_tree_selector_rejected() {
        let (ds, _, configs) = trained();
        let train: Vec<usize> = (0..ds.n_shapes()).collect();
        let knn =
            Selector::train(SelectorKind::OneNearestNeighbor, &ds, &train, &configs, 0).unwrap();
        assert!(CompiledTree::from_selector(&knn).is_err());
    }
}
