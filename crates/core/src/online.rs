//! Closed-loop online refinement of kernel selection.
//!
//! The paper ships a classifier trained offline and stops there; its
//! follow-up argues the selector must *adapt* when the serving device's
//! performance profile differs from the training substrate. This module
//! closes that loop. An [`OnlineSelector`] sits between the
//! [`CachedSelector`] and the queue and runs a two-stage policy:
//!
//! * **Mirror** (cold start): every decision delegates verbatim to the
//!   cached offline classifier, so with no drift the serving behaviour
//!   is bit-identical to the static stack. Meanwhile every measured
//!   completion ([`autokernel_sycl_sim::LaunchMeasurement`] durations
//!   fed through [`OnlineSelector::record_success`]) builds per-arm
//!   duration baselines and drives the drift detector.
//! * **Adaptive** (post-drift): decisions come from a UCB1-style bandit
//!   per shape-cluster over the shipped configurations, seeded from the
//!   offline classifier's training-set ranking so the bandit starts
//!   from the best offline knowledge rather than uniform ignorance.
//!
//! Drift is declared by a Page–Hinkley test over per-launch relative
//! slowdown `x = duration / baseline`, where the baseline is the same
//! arm's mean completion time in its cluster: a device swap, a
//! fault-degraded part, or an `edge_dsp`-style train/serve mismatch
//! pushes `x` far above 1 across launches and trips the detector. A
//! trip re-ranks (resets bandit statistics so stale-device evidence
//! cannot outvote fresh reality), bumps the decision-cache generation
//! (O(1) invalidation of every memoised shape decision), and switches
//! the policy to the adaptive stage.

use crate::cache::{CachedSelector, SelectionOutcome};
use crate::decide::ClusterTable;
use crate::{CoreError, Result};
use autokernel_gemm::GemmShape;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for the online layer. The defaults are calibrated for
/// the simulated devices: a nano→edge_dsp swap shifts relative
/// slowdowns by 10–100×, tripping Page–Hinkley within a handful of
/// launches, while the ±3 % deterministic timing noise stays far below
/// `ph_delta` + `ph_lambda`.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// UCB exploration coefficient `c` (0 = pure exploitation).
    pub exploration: f64,
    /// Weight of the offline prior, in pseudo-pulls: how many measured
    /// launches it takes for live evidence to outweigh the classifier.
    pub prior_weight: f64,
    /// Shape-cluster quantisation step in log2 space: shapes whose
    /// `log2(m,k,n)` round to the same lattice point share one bandit.
    pub cluster_quantum: f64,
    /// Page–Hinkley drift tolerance subtracted from every sample.
    pub ph_delta: f64,
    /// Page–Hinkley trip threshold.
    pub ph_lambda: f64,
    /// Minimum slowdown samples before a trip is allowed.
    pub ph_warmup: u32,
    /// Relative-slowdown sample charged for a transient fault (a fault
    /// costs real device time, so it is drift evidence too).
    pub fault_slowdown: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            exploration: 0.15,
            prior_weight: 1.0,
            cluster_quantum: 1.0,
            ph_delta: 0.05,
            ph_lambda: 25.0,
            ph_warmup: 12,
            fault_slowdown: 4.0,
        }
    }
}

/// One shipped configuration's online statistics within a cluster.
#[derive(Debug, Clone, Copy)]
struct Arm {
    /// Offline prior performance in `[0, 1]` (train-set mean normalised
    /// score of this configuration).
    prior: f64,
    /// Times this arm was charged with an outcome (success or failure).
    pulls: u64,
    /// Completed launches among `pulls`.
    completions: u64,
    /// Total simulated seconds across completions.
    sum_duration_s: f64,
    /// Structurally rejected this generation (resource exhaustion):
    /// never picked again until the next drift reset.
    disabled: bool,
}

impl Arm {
    fn fresh(prior: f64) -> Self {
        Arm {
            prior,
            pulls: 0,
            completions: 0,
            sum_duration_s: 0.0,
            disabled: false,
        }
    }

    fn mean_duration_s(&self) -> Option<f64> {
        if self.completions == 0 {
            None
        } else {
            Some(self.sum_duration_s / self.completions as f64)
        }
    }
}

/// Page–Hinkley change detector over relative-slowdown samples.
#[derive(Debug, Clone, Copy, Default)]
struct PageHinkley {
    n: u32,
    mean_x: f64,
    m: f64,
    min_m: f64,
}

impl PageHinkley {
    /// Feed one sample; returns the current test statistic.
    fn update(&mut self, x: f64, delta: f64) -> f64 {
        self.n += 1;
        self.mean_x += (x - self.mean_x) / self.n as f64;
        self.m += x - self.mean_x - delta;
        if self.m < self.min_m {
            self.min_m = self.m;
        }
        self.m - self.min_m
    }

    fn reset(&mut self) {
        *self = PageHinkley::default();
    }
}

/// Bandit state for one shape-cluster: one [`Arm`] per shipped slot.
#[derive(Debug, Clone)]
struct ClusterState {
    arms: Vec<Arm>,
}

/// Mutable interior of the selector, behind one mutex. The Mirror-stage
/// decision path never takes it; only reward recording and adaptive
/// picks do.
#[derive(Debug)]
struct Inner {
    /// Open-addressed shape-cluster table ([`crate::decide`]): flat
    /// probes and an allocation-free steady state in place of the
    /// `HashMap` the bandit used to walk.
    clusters: ClusterTable<ClusterState>,
    ph: PageHinkley,
}

/// Counters describing the online layer, for reports and tests.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct OnlineStats {
    /// Whether the adaptive (post-drift) stage is active.
    pub adaptive: bool,
    /// Distinct shape-clusters with bandit state.
    pub clusters: u64,
    /// Current Page–Hinkley statistic.
    pub ph_statistic: f64,
    /// Slowdown samples consumed since the last reset.
    pub ph_samples: u64,
}

/// The closed-loop refinement layer: [`CachedSelector`] semantics until
/// drift is detected, per-cluster UCB bandit afterwards. Shareable
/// across threads (`&self` everywhere).
pub struct OnlineSelector {
    cached: Arc<CachedSelector>,
    config: OnlineConfig,
    /// Global config index per slot (frozen copy of the shipped set).
    shipped: Vec<usize>,
    /// Offline prior per slot, aligned with `shipped`.
    priors: Vec<f64>,
    /// Slot indices in descending-prior order: the adaptive argmax
    /// scans in this order with a strict `>`, so with no online
    /// evidence the offline-best arm wins every tie.
    scan_order: Vec<usize>,
    adaptive: AtomicBool,
    /// Selector generation: bumped on every drift transition. Rewards
    /// carry the generation they were *decided* under, and a reward
    /// whose generation no longer matches is discarded — otherwise a
    /// measurement issued before a drift trip and fed back after the
    /// reset would seed the fresh bandit with old-device evidence.
    generation: AtomicU64,
    inner: Mutex<Inner>,
}

impl OnlineSelector {
    /// Wrap `cached` with online refinement. `priors` carries one
    /// offline score in `[0, 1]` per shipped configuration, in
    /// `Selector::configs()` order (the pipeline's train-set mean
    /// normalised performance — see `TuningPipeline::online_selector`).
    // lint:allow-fn(no-alloc) constructed once per deployment, not per decision
    pub fn new(
        cached: Arc<CachedSelector>,
        priors: Vec<f64>,
        config: OnlineConfig,
    ) -> Result<Self> {
        let shipped = cached.selector().configs().to_vec();
        if shipped.is_empty() || shipped.len() != priors.len() {
            return Err(CoreError::Dataset(format!(
                "online priors cover {} configs, shipped set has {}",
                priors.len(),
                shipped.len()
            )));
        }
        let mut scan_order: Vec<usize> = (0..shipped.len()).collect();
        scan_order.sort_by(|&a, &b| {
            let pa = priors.get(a).copied().unwrap_or(0.0);
            let pb = priors.get(b).copied().unwrap_or(0.0);
            pb.total_cmp(&pa).then(a.cmp(&b))
        });
        Ok(OnlineSelector {
            cached,
            config,
            shipped,
            priors,
            scan_order,
            adaptive: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                clusters: ClusterTable::new(),
                ph: PageHinkley::default(),
            }),
        })
    }

    /// The wrapped cached selector (telemetry lives here).
    pub fn cached(&self) -> &CachedSelector {
        &self.cached
    }

    /// The tuning knobs in force.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// The shipped configuration indices the bandit chooses among.
    pub fn shipped(&self) -> &[usize] {
        &self.shipped
    }

    /// Whether the adaptive stage is active (false until first drift).
    pub fn is_adaptive(&self) -> bool {
        self.adaptive.load(Ordering::Acquire) // atomic:role(flag)
    }

    /// The current selector generation. Capture this at decision time
    /// and pass it back with the measured reward; rewards from an older
    /// generation are discarded (see
    /// [`OnlineSelector::record_success`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire) // atomic:role(publish)
    }

    /// Point-in-time online counters.
    pub fn stats(&self) -> OnlineStats {
        let inner = self.inner.lock();
        OnlineStats {
            adaptive: self.is_adaptive(),
            clusters: inner.clusters.len() as u64,
            ph_statistic: inner.ph.m - inner.ph.min_m,
            ph_samples: inner.ph.n as u64,
        }
    }

    /// The shape-cluster lattice point `shape` falls on.
    fn cluster_key(&self, shape: &GemmShape) -> [i64; 3] {
        let q = if self.config.cluster_quantum > 0.0 {
            self.config.cluster_quantum
        } else {
            1.0
        };
        shape.log_features().map(|f| (f / q).round() as i64)
    }

    /// Select a configuration for `shape`. Mirror stage: delegates to
    /// the cached offline classifier, bit-identical to the static
    /// stack. Adaptive stage: per-cluster UCB argmax (bypasses the
    /// shape cache; counted in the `adaptive_picks` telemetry rather
    /// than `hits`/`misses`).
    pub fn select_outcome(&self, shape: &GemmShape) -> Result<SelectionOutcome> {
        if !self.is_adaptive() {
            return self.cached.select_outcome(shape);
        }
        let key = self.cluster_key(shape);
        let mut inner = self.inner.lock();
        let cluster = self.cluster_entry(&mut inner, key);
        let slot = self.pick_slot(cluster);
        drop(inner);
        self.cached.telemetry().record_adaptive_pick();
        let config_index = self
            .shipped
            .get(slot)
            .copied()
            .ok_or(CoreError::BadConfigIndex(slot))?;
        Ok(SelectionOutcome {
            config_index,
            cache_hit: false,
        })
    }

    /// Convenience: just the configuration index.
    pub fn select(&self, shape: &GemmShape) -> Result<usize> {
        Ok(self.select_outcome(shape)?.config_index)
    }

    /// Decide on the fast path. Mirror stage: exactly
    /// [`CachedSelector::decide`] — the lock-free sub-20ns pick.
    /// Adaptive stage: the bandit pick (mutex + UCB argmax), returning
    /// the same configuration [`OnlineSelector::select`] would.
    #[inline]
    pub fn decide(&self, shape: &GemmShape) -> Result<u16> {
        if !self.is_adaptive() {
            return self.cached.decide(shape);
        }
        self.decide_adaptive(shape)
    }

    #[cold]
    fn decide_adaptive(&self, shape: &GemmShape) -> Result<u16> {
        let outcome = self.select_outcome(shape)?;
        u16::try_from(outcome.config_index)
            .map_err(|_| CoreError::BadConfigIndex(outcome.config_index))
    }

    /// Batched decide: mirror stage amortises telemetry atomics across
    /// the chunk via [`CachedSelector::decide_batch`]; adaptive stage
    /// picks per shape (each pick consults live bandit evidence).
    /// `out` must have one slot per shape.
    pub fn decide_batch(&self, shapes: &[GemmShape], out: &mut [u16]) -> Result<()> {
        if !self.is_adaptive() {
            return self.cached.decide_batch(shapes, out);
        }
        if shapes.len() != out.len() {
            // lint:allow(no-alloc) typed-error construction on the cold arity-mismatch arm
            return Err(CoreError::Dataset(format!(
                "decide_batch arity mismatch: {} shapes, {} output slots",
                shapes.len(),
                out.len()
            )));
        }
        for (shape, decided) in shapes.iter().zip(out.iter_mut()) {
            *decided = self.decide_adaptive(shape)?;
        }
        Ok(())
    }

    fn cluster_entry<'a>(&self, inner: &'a mut Inner, key: [i64; 3]) -> &'a mut ClusterState {
        inner.clusters.get_or_insert_with(key, || ClusterState {
            arms: self.priors.iter().map(|&p| Arm::fresh(p)).collect(),
        })
    }

    /// UCB argmax over the cluster's enabled arms, scanning in
    /// descending-prior order with strict `>` so zero-evidence ties
    /// resolve to the offline-best arm. Per classic UCB1 optimism,
    /// every enabled arm is sampled once (in prior order) before the
    /// estimates compete: at the handful of pulls a shape-cluster sees,
    /// the logarithmic bonus alone can never overcome a rival arm that
    /// the fallback chain happened to complete first. Once all arms
    /// have evidence, performance is measured at decision time as
    /// `cluster_best_mean / arm_mean` (both over completed launches),
    /// discounted by the arm's completion rate so fault-prone arms
    /// sink, then blended with the prior at `prior_weight`
    /// pseudo-pulls.
    fn pick_slot(&self, cluster: &ClusterState) -> usize {
        if let Some(&slot) = self.scan_order.iter().find(|&&slot| {
            cluster
                .arms
                .get(slot)
                .is_some_and(|a| !a.disabled && a.pulls == 0)
        }) {
            return slot;
        }
        let total_pulls: u64 = cluster.arms.iter().map(|a| a.pulls).sum();
        let best_mean = cluster
            .arms
            .iter()
            .filter(|a| !a.disabled)
            .filter_map(Arm::mean_duration_s)
            .fold(f64::INFINITY, f64::min);
        let w = self.config.prior_weight.max(f64::MIN_POSITIVE);
        let mut best: Option<(usize, f64)> = None;
        for &slot in &self.scan_order {
            let Some(arm) = cluster.arms.get(slot) else {
                continue;
            };
            if arm.disabled {
                continue;
            }
            let perf = match arm.mean_duration_s() {
                Some(mean) if best_mean.is_finite() && mean > 0.0 => {
                    let completion_rate = arm.completions as f64 / arm.pulls.max(1) as f64;
                    (best_mean / mean).clamp(0.0, 1.0) * completion_rate
                }
                _ => 0.0,
            };
            let evidence = arm.pulls as f64;
            let value = (arm.prior * w + perf * evidence) / (w + evidence);
            let bonus =
                self.config.exploration * (((1 + total_pulls) as f64).ln() / (w + evidence)).sqrt();
            let score = value + bonus;
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((slot, score));
            }
        }
        // Every arm disabled (the executor's reference rung serves such
        // traffic): fall back to the offline-best slot.
        best.map(|(slot, _)| slot)
            .or_else(|| self.scan_order.first().copied())
            .unwrap_or(0)
    }

    /// Feed one completed launch of shipped configuration
    /// `config_index` on `shape` that took `duration_s` simulated
    /// seconds. `generation` is the value of
    /// [`OnlineSelector::generation`] captured when the decision was
    /// made; if a drift trip has advanced the generation since, the
    /// measurement describes the *old* regime and is discarded (counted
    /// in `stale_rewards_dropped`). Updates the arm's reward estimate
    /// and the drift detector; returns `true` if this measurement
    /// tripped drift.
    pub fn record_success(
        &self,
        shape: &GemmShape,
        config_index: usize,
        duration_s: f64,
        generation: u64,
    ) -> bool {
        if generation != self.generation() {
            self.cached.telemetry().record_stale_reward_dropped();
            return false;
        }
        let Some(slot) = self.shipped.iter().position(|&c| c == config_index) else {
            return false; // not a shipped arm (e.g. the reference GEMM)
        };
        if !duration_s.is_finite() || duration_s <= 0.0 {
            return false;
        }
        let key = self.cluster_key(shape);
        let mut inner = self.inner.lock();
        let cluster = self.cluster_entry(&mut inner, key);
        let slowdown = cluster
            .arms
            .get(slot)
            .and_then(Arm::mean_duration_s)
            .map(|baseline| duration_s / baseline);
        if let Some(arm) = cluster.arms.get_mut(slot) {
            arm.pulls += 1;
            arm.completions += 1;
            arm.sum_duration_s += duration_s;
        }
        self.cached.telemetry().record_reward_update();
        match slowdown {
            Some(x) => self.observe_slowdown(inner, x),
            None => false, // first completion establishes the baseline
        }
    }

    /// Feed one failed launch of `config_index` on `shape`. Transient
    /// faults count as drift evidence at `fault_slowdown`; structural
    /// rejections (resource exhaustion on the new device) disable the
    /// arm for the current generation. `generation` has
    /// [`OnlineSelector::record_success`] semantics: stale-generation
    /// failures are discarded. Returns `true` on a drift trip.
    pub fn record_failure(
        &self,
        shape: &GemmShape,
        config_index: usize,
        transient: bool,
        generation: u64,
    ) -> bool {
        if generation != self.generation() {
            self.cached.telemetry().record_stale_reward_dropped();
            return false;
        }
        let Some(slot) = self.shipped.iter().position(|&c| c == config_index) else {
            return false;
        };
        let key = self.cluster_key(shape);
        let mut inner = self.inner.lock();
        let cluster = self.cluster_entry(&mut inner, key);
        if let Some(arm) = cluster.arms.get_mut(slot) {
            arm.pulls += 1;
            if !transient {
                arm.disabled = true;
            }
        }
        self.cached.telemetry().record_reward_update();
        // Both flavours are drift evidence: a transient fault costs real
        // device time, and a structural rejection of a config the
        // offline model shipped is device mismatch in itself.
        let x = self.config.fault_slowdown;
        self.observe_slowdown(inner, x)
    }

    /// Push a relative-slowdown sample through Page–Hinkley; on a trip,
    /// run the drift transition. Consumes the lock guard so the
    /// transition can re-take state without deadlock.
    fn observe_slowdown(&self, mut inner: parking_lot::MutexGuard<'_, Inner>, x: f64) -> bool {
        let statistic = inner.ph.update(x, self.config.ph_delta);
        let warmed = inner.ph.n >= self.config.ph_warmup;
        if warmed && statistic > self.config.ph_lambda {
            self.drift_locked(&mut inner);
            true
        } else {
            false
        }
    }

    /// Export the full learned state — per-cluster arms, drift
    /// detector, generation, stage — for `core::persist` snapshots.
    /// Clusters are emitted in sorted key order so the encoding is
    /// deterministic (snapshot CRCs are stable across captures of the
    /// same state).
    // lint:allow-fn(no-alloc) snapshot export runs off the decide path
    pub fn export_state(&self) -> crate::persist::OnlineState {
        let inner = self.inner.lock();
        let mut clusters: Vec<crate::persist::ClusterSnapshot> = inner
            .clusters
            .iter()
            .map(|(key, cluster)| crate::persist::ClusterSnapshot {
                key: *key,
                arms: cluster
                    .arms
                    .iter()
                    .map(|a| crate::persist::ArmState {
                        prior: a.prior,
                        pulls: a.pulls,
                        completions: a.completions,
                        sum_duration_s: a.sum_duration_s,
                        disabled: a.disabled,
                    })
                    .collect(),
            })
            .collect();
        clusters.sort_by_key(|c| c.key);
        crate::persist::OnlineState {
            adaptive: self.is_adaptive(),
            generation: self.generation(),
            shipped: self.shipped.clone(),
            ph_n: inner.ph.n as u64,
            ph_mean_x: inner.ph.mean_x,
            ph_m: inner.ph.m,
            ph_min_m: inner.ph.min_m,
            clusters,
        }
    }

    /// Apply a previously exported state. Validates before touching
    /// anything: the shipped set must match exactly, the snapshot
    /// generation must not be older than the live one (monotonicity —
    /// a restored reward stream must never resurrect a pre-drift
    /// regime), and the drift-detector registers must be finite.
    /// Individual clusters whose arms are malformed (wrong arity,
    /// non-finite or negative statistics, `completions > pulls`) are
    /// dropped rather than poisoning the bandit; the return value is
    /// the number of clusters dropped. A restored adaptive selector
    /// resumes in the adaptive stage with its evidence intact.
    // lint:allow-fn(no-alloc) snapshot restore is a cold startup path
    pub fn restore_state(
        &self,
        state: &crate::persist::OnlineState,
    ) -> std::result::Result<u64, String> {
        if state.shipped != self.shipped {
            return Err(format!(
                "shipped set mismatch: snapshot has {} configs, live selector {}",
                state.shipped.len(),
                self.shipped.len()
            ));
        }
        if state.generation < self.generation() {
            return Err(format!(
                "generation regression: snapshot {} < live {}",
                state.generation,
                self.generation()
            ));
        }
        if state.ph_n > u32::MAX as u64
            || !state.ph_mean_x.is_finite()
            || !state.ph_m.is_finite()
            || !state.ph_min_m.is_finite()
        {
            return Err("drift-detector registers out of range".to_string());
        }
        let mut dropped = 0u64;
        let mut clusters = ClusterTable::with_capacity(state.clusters.len());
        for cluster in &state.clusters {
            let valid = cluster.arms.len() == self.shipped.len()
                && cluster.arms.iter().all(|a| {
                    a.prior.is_finite()
                        && a.prior >= 0.0
                        && a.sum_duration_s.is_finite()
                        && a.sum_duration_s >= 0.0
                        && a.completions <= a.pulls
                });
            if !valid {
                dropped += 1;
                continue;
            }
            clusters.insert(
                cluster.key,
                ClusterState {
                    arms: cluster
                        .arms
                        .iter()
                        .map(|a| Arm {
                            prior: a.prior,
                            pulls: a.pulls,
                            completions: a.completions,
                            sum_duration_s: a.sum_duration_s,
                            disabled: a.disabled,
                        })
                        .collect(),
                },
            );
        }
        let mut inner = self.inner.lock();
        inner.clusters = clusters;
        inner.ph = PageHinkley {
            n: state.ph_n as u32,
            mean_x: state.ph_mean_x,
            m: state.ph_m,
            min_m: state.ph_min_m,
        };
        drop(inner);
        self.generation.store(state.generation, Ordering::Release); // atomic:role(publish)
        self.adaptive.store(state.adaptive, Ordering::Release); // atomic:role(flag)
        Ok(dropped)
    }

    /// Declare drift now, regardless of the detector — for operators
    /// who *know* the device changed (e.g. a scheduled swap).
    pub fn force_drift(&self) {
        let mut inner = self.inner.lock();
        self.drift_locked(&mut inner);
    }

    /// The drift transition: reset bandit statistics (old-device
    /// evidence is now misinformation), reset the detector, bump the
    /// decision-cache generation and enter the adaptive stage.
    fn drift_locked(&self, inner: &mut Inner) {
        inner.clusters.clear();
        inner.ph.reset();
        // Advance the selector generation *before* flipping adaptive on:
        // a reward captured under the old generation must already see
        // the new value and be dropped.
        self.generation.fetch_add(1, Ordering::AcqRel); // atomic:role(publish)
        self.adaptive.store(true, Ordering::Release); // atomic:role(flag)
        self.cached.invalidate_generation();
        self.cached.telemetry().record_drift_event();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_hinkley_ignores_stationary_noise() {
        let mut ph = PageHinkley::default();
        let mut worst: f64 = 0.0;
        for i in 0..1000 {
            // ±3 % multiplicative noise around 1.0, like the sim clock.
            let x = 1.0 + 0.03 * ((i * 2654435761u64 % 200) as f64 / 100.0 - 1.0);
            worst = worst.max(ph.update(x, 0.05));
        }
        assert!(worst < 1.0, "stationary stream must not trip ({worst})");
    }

    #[test]
    fn page_hinkley_trips_on_sustained_slowdown() {
        let mut ph = PageHinkley::default();
        for _ in 0..50 {
            ph.update(1.0, 0.05);
        }
        let mut tripped_at = None;
        for i in 0..20 {
            if ph.update(30.0, 0.05) > 25.0 {
                tripped_at = Some(i);
                break;
            }
        }
        assert!(
            matches!(tripped_at, Some(i) if i <= 3),
            "a 30x slowdown must trip within a few samples ({tripped_at:?})"
        );
    }
}
