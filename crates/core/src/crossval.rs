//! K-fold cross-validated evaluation — an extension addressing the
//! paper's own caveat that a single 136/34 split of 170 samples
//! generalises shakily. Every fold re-runs the full protocol (prune on
//! the fold's training rows, train the selector, score on the held-out
//! fold), so the variance reported is the honest end-to-end variance.

use crate::dataset::PerformanceDataset;
use crate::evaluate::{achievable_score, selection_score};
use crate::prune::PruneMethod;
use crate::select::{Selector, SelectorKind};
use crate::Result;
use autokernel_mlkit::model_selection::k_fold;

/// Per-fold scores plus summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// One score per fold.
    pub fold_scores: Vec<f64>,
    /// Mean over folds.
    pub mean: f64,
    /// Population standard deviation over folds.
    pub std: f64,
}

impl CvResult {
    fn from_scores(fold_scores: Vec<f64>) -> CvResult {
        let n = fold_scores.len().max(1) as f64;
        let mean = fold_scores.iter().sum::<f64>() / n;
        let var = fold_scores
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        CvResult {
            fold_scores,
            mean,
            std: var.sqrt(),
        }
    }
}

/// Cross-validate the *achievable ceiling* of a pruning method
/// (the Figure 4 metric, per fold).
pub fn cross_validate_pruning(
    ds: &PerformanceDataset,
    method: PruneMethod,
    budget: usize,
    folds: usize,
    seed: u64,
) -> Result<CvResult> {
    let mut scores = Vec::with_capacity(folds);
    for (train, val) in k_fold(ds.n_shapes(), folds, seed) {
        let configs = method.select(ds, &train, budget, seed)?;
        scores.push(achievable_score(ds, &val, &configs));
    }
    Ok(CvResult::from_scores(scores))
}

/// Cross-validate a full prune-then-select pipeline (the Table I
/// metric, per fold).
pub fn cross_validate_selector(
    ds: &PerformanceDataset,
    prune: PruneMethod,
    kind: SelectorKind,
    budget: usize,
    folds: usize,
    seed: u64,
) -> Result<CvResult> {
    let mut scores = Vec::with_capacity(folds);
    for (train, val) in k_fold(ds.n_shapes(), folds, seed) {
        let configs = prune.select(ds, &train, budget, seed)?;
        let selector = Selector::train(kind, ds, &train, &configs, seed)?;
        let chosen = selector.select_rows(ds, &val)?;
        scores.push(selection_score(ds, &val, &chosen));
    }
    Ok(CvResult::from_scores(scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokernel_gemm::GemmShape;
    use autokernel_sycl_sim::DeviceSpec;

    fn ds() -> PerformanceDataset {
        let shapes: Vec<(GemmShape, String)> = [
            (64, 64, 64),
            (512, 512, 512),
            (1, 4096, 1000),
            (12544, 27, 64),
            (196, 2304, 256),
            (3136, 144, 24),
            (49, 960, 160),
            (784, 1152, 128),
            (32, 4096, 4096),
            (2, 2048, 1000),
            (6272, 576, 128),
            (1024, 1024, 1024),
            (128, 128, 1000),
            (392, 4608, 512),
            (16, 9216, 4096),
        ]
        .iter()
        .map(|&(m, k, n)| (GemmShape::new(m, k, n), "T".to_string()))
        .collect();
        PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap()
    }

    #[test]
    fn pruning_cv_produces_fold_scores_in_range() {
        let ds = ds();
        let cv = cross_validate_pruning(&ds, PruneMethod::KMeans, 4, 3, 1).unwrap();
        assert_eq!(cv.fold_scores.len(), 3);
        for s in &cv.fold_scores {
            assert!(*s > 0.0 && *s <= 1.0);
        }
        assert!(cv.mean > 0.0 && cv.mean <= 1.0);
        assert!(cv.std >= 0.0);
    }

    #[test]
    fn selector_cv_bounded_by_pruning_cv_in_the_mean() {
        // A classifier can at best match the per-fold oracle; means obey
        // the same ordering.
        let ds = ds();
        let prune = PruneMethod::DecisionTree;
        let oracle = cross_validate_pruning(&ds, prune, 5, 3, 2).unwrap();
        let sel = cross_validate_selector(&ds, prune, SelectorKind::DecisionTree, 5, 3, 2).unwrap();
        assert!(
            sel.mean <= oracle.mean + 1e-9,
            "{} vs {}",
            sel.mean,
            oracle.mean
        );
    }

    #[test]
    fn cv_is_deterministic() {
        let ds = ds();
        let a = cross_validate_selector(
            &ds,
            PruneMethod::KMeans,
            SelectorKind::DecisionTree,
            4,
            3,
            9,
        )
        .unwrap();
        let b = cross_validate_selector(
            &ds,
            PruneMethod::KMeans,
            SelectorKind::DecisionTree,
            4,
            3,
            9,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn summary_statistics_match_scores() {
        let cv = CvResult::from_scores(vec![0.5, 0.7, 0.9]);
        assert!((cv.mean - 0.7).abs() < 1e-12);
        let expect_std = ((0.04 + 0.0 + 0.04) / 3.0f64).sqrt();
        assert!((cv.std - expect_std).abs() < 1e-12);
    }
}
