//! A Chase–Lev-style work-stealing deque for the shard executor.
//!
//! One owner pushes and pops batches at the *bottom*; any number of
//! thieves steal from the *top*. The scheduler uses it in a restricted
//! regime — each wave's deques are populated single-threaded before the
//! workers spawn and never refilled mid-wave — but the implementation
//! is the general algorithm so the `analyze::interleave` model can
//! exercise (and mutate) the full publish protocol:
//!
//! * `push` writes the slot with a Relaxed store, then publishes it to
//!   thieves with a Release store on `bottom`. A thief's Acquire (or
//!   stronger) load of `bottom` therefore carries the slot value.
//! * `pop` claims a slot by storing the decremented `bottom` with
//!   SeqCst and *then* re-reading `top` with SeqCst — the racing
//!   store/load pair at the heart of Chase–Lev. Without the total
//!   order, the owner and a thief could both observe the other as "not
//!   yet there" and take the same last item.
//! * `steal` claims the top slot with a SeqCst compare-exchange; losing
//!   the race retries, an empty deque returns `None`.
//!
//! Capacity is fixed at construction (the scheduler sizes each deque to
//! the wave's batch count, so indices are never reused and ABA cannot
//! arise there). Slots store `item + 1` so an unwritten slot reads as
//! zero and maps to `None` instead of a bogus item — the decide path's
//! totality discipline, and the observable a weakened-ordering mutation
//! trips in the interleaving model checker.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-capacity work-stealing deque over `u64` items.
///
/// Single owner (push/pop at the bottom), many thieves (steal at the
/// top). All operations are lock-free and panic-free.
pub struct StealDeque {
    /// Steal index: monotonically increasing claim cursor for thieves.
    top: AtomicU64,
    /// Owner index: next free slot; the owner works at `bottom - 1`.
    bottom: AtomicU64,
    /// Capacity mask (`capacity - 1`; capacity is a power of two).
    mask: u64,
    /// Ring of items, each stored as `item + 1` (0 = never written).
    slots: Box<[AtomicU64]>,
}

impl StealDeque {
    /// A deque able to hold at least `capacity` items at once.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        StealDeque {
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
            mask: cap as u64 - 1,
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Items currently in the deque (racy snapshot: exact only when no
    /// other thread is mid-operation).
    pub fn len(&self) -> usize {
        // atomic:role(publish)
        let b = self.bottom.load(Ordering::Acquire);
        // atomic:role(publish)
        let t = self.top.load(Ordering::Acquire);
        b.saturating_sub(t) as usize
    }

    /// Whether the deque currently holds no items (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: append `item` at the bottom. Returns `false` when
    /// the ring is full (the scheduler sizes deques exactly, so a full
    /// deque is a caller bug surfaced as backpressure, not a panic).
    pub fn push(&self, item: u64) -> bool {
        // atomic:role(publish)
        let b = self.bottom.load(Ordering::Acquire);
        // atomic:role(publish)
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) > self.mask {
            return false;
        }
        let Some(slot) = self.slots.get((b & self.mask) as usize) else {
            return false;
        };
        // The slot value itself is ordered by the Release store on
        // `bottom` below, not by its own ordering.
        // atomic:role(tick)
        slot.store(item + 1, Ordering::Relaxed);
        // Publish the written slot to thieves.
        // atomic:role(publish)
        self.bottom.store(b + 1, Ordering::Release);
        true
    }

    /// Owner-only: take the most recently pushed item, racing thieves
    /// for the last one.
    pub fn pop(&self) -> Option<u64> {
        // atomic:role(publish)
        let b = self.bottom.load(Ordering::Acquire);
        // atomic:role(publish)
        if b <= self.top.load(Ordering::SeqCst) {
            return None;
        }
        let b = b - 1;
        // Claim slot `b` before re-reading the steal index — the
        // SeqCst store/load pair that makes owner and thief agree on
        // who owns the last item.
        // atomic:role(publish)
        self.bottom.store(b, Ordering::SeqCst);
        // atomic:role(publish)
        let t = self.top.load(Ordering::SeqCst);
        if t < b {
            // At least one more item remains for the thieves; the
            // claim on `b` is uncontested.
            return self.read_slot(b);
        }
        if t == b {
            // Exactly one item left: race the thieves through `top`.
            let won = self
                .top
                // atomic:role(publish)
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            // atomic:role(publish)
            self.bottom.store(b + 1, Ordering::Release);
            return if won { self.read_slot(b) } else { None };
        }
        // A thief claimed the last item between the loads: restore.
        // atomic:role(publish)
        self.bottom.store(b + 1, Ordering::Release);
        None
    }

    /// Thief: claim the oldest item. Loses to a concurrent owner or
    /// thief by retrying; returns `None` once the deque is empty.
    pub fn steal(&self) -> Option<u64> {
        loop {
            // atomic:role(publish)
            let t = self.top.load(Ordering::SeqCst);
            // atomic:role(publish)
            let b = self.bottom.load(Ordering::SeqCst);
            if t >= b {
                return None;
            }
            let item = self.read_slot(t);
            if self
                .top
                // atomic:role(publish)
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return item;
            }
            std::hint::spin_loop();
        }
    }

    /// Read the slot at ring index `index`. An unwritten slot (raw 0)
    /// reads as `None` — unreachable under the correct protocol, and
    /// exactly what the interleaving model's weakened-ordering mutation
    /// makes observable.
    fn read_slot(&self, index: u64) -> Option<u64> {
        let slot = self.slots.get((index & self.mask) as usize)?;
        // Ordered by the `bottom` Release/Acquire pair, not locally.
        // atomic:role(tick)
        slot.load(Ordering::Relaxed).checked_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lifo_for_the_owner() {
        let d = StealDeque::with_capacity(8);
        assert!(d.is_empty());
        assert!(d.push(1) && d.push(2) && d.push(3));
        assert_eq!(d.len(), 3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn fifo_for_thieves() {
        let d = StealDeque::with_capacity(8);
        for i in 0..4 {
            assert!(d.push(i));
        }
        assert_eq!(d.steal(), Some(0));
        assert_eq!(d.steal(), Some(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), Some(2));
        assert_eq!(d.steal(), None);
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn full_ring_rejects_push() {
        let d = StealDeque::with_capacity(2);
        assert!(d.push(10) && d.push(11));
        assert!(!d.push(12), "ring of 2 is full");
        assert_eq!(d.pop(), Some(11));
        assert!(d.push(12), "slot freed by pop is reusable");
    }

    #[test]
    fn every_item_claimed_exactly_once_under_contention() {
        const ITEMS: u64 = 10_000;
        const THIEVES: usize = 3;
        let d = StealDeque::with_capacity(ITEMS as usize);
        for i in 0..ITEMS {
            assert!(d.push(i));
        }
        let seen: Vec<AtomicUsize> = (0..ITEMS).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                scope.spawn(|| {
                    while let Some(item) = d.steal() {
                        seen[item as usize].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // The owner drains its own end concurrently.
            while let Some(item) = d.pop() {
                seen[item as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (item, count) in seen.iter().enumerate() {
            assert_eq!(
                count.load(Ordering::Relaxed),
                1,
                "item {item} claimed a wrong number of times"
            );
        }
    }
}
