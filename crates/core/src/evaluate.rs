//! Scoring of pruned configuration sets and runtime selectors
//! (the metrics behind Figure 4 and Table I).

use crate::dataset::PerformanceDataset;
use autokernel_mlkit::metrics::geometric_mean;

/// [`geometric_mean`] with serving-report semantics: an empty slice, a
/// slice with no positive finite score (a fully-pruned shipped set on a
/// device that rejects every member), or NaN contamination all report
/// 0.0. The raw geomean's log-domain epsilon clamp would instead turn
/// "nothing can run" into a tiny-but-positive score.
fn guarded_geomean(per_shape: &[f64]) -> f64 {
    if !per_shape.iter().any(|v| v.is_finite() && *v > 0.0) {
        return 0.0;
    }
    if per_shape.iter().any(|v| v.is_nan()) {
        return 0.0;
    }
    geometric_mean(per_shape)
}

/// Geometric mean over `rows` of the best *achievable* normalised
/// performance given a restricted configuration set — the Figure 4
/// metric. 1.0 means the restricted set contains the optimum for every
/// shape.
pub fn achievable_score(ds: &PerformanceDataset, rows: &[usize], configs: &[usize]) -> f64 {
    if configs.is_empty() || rows.is_empty() {
        return 0.0;
    }
    let per_shape: Vec<f64> = rows
        .iter()
        .map(|&i| {
            configs
                .iter()
                .map(|&c| ds.normalized(i, c))
                .fold(0.0f64, f64::max)
        })
        .collect();
    guarded_geomean(&per_shape)
}

/// Geometric mean over `rows` of the normalised performance of the
/// *chosen* configuration per shape — the Table I metric.
///
/// `chosen[i]` is the configuration index selected for `rows[i]`.
pub fn selection_score(ds: &PerformanceDataset, rows: &[usize], chosen: &[usize]) -> f64 {
    debug_assert_eq!(rows.len(), chosen.len());
    if rows.is_empty() {
        return 0.0;
    }
    let per_shape: Vec<f64> = rows
        .iter()
        .zip(chosen)
        .map(|(&i, &c)| ds.normalized(i, c))
        .collect();
    guarded_geomean(&per_shape)
}

/// Fraction of `rows` whose chosen configuration is the best available
/// within `configs` (classifier top-1 accuracy against the restricted
/// oracle).
pub fn oracle_accuracy(
    ds: &PerformanceDataset,
    rows: &[usize],
    configs: &[usize],
    chosen: &[usize],
) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let hits = rows
        .iter()
        .zip(chosen)
        .filter(|&(&i, &c)| {
            ds.best_config_among(i, configs)
                .map(|(_, best)| best == c)
                .unwrap_or(false)
        })
        .count();
    hits as f64 / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokernel_gemm::GemmShape;
    use autokernel_sycl_sim::DeviceSpec;

    fn ds() -> PerformanceDataset {
        let shapes = vec![
            (GemmShape::new(64, 64, 64), "T".into()),
            (GemmShape::new(512, 512, 512), "T".into()),
            (GemmShape::new(1, 1024, 1000), "T".into()),
        ];
        PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap()
    }

    #[test]
    fn full_set_achieves_one() {
        let ds = ds();
        let all: Vec<usize> = (0..ds.n_configs()).collect();
        let rows: Vec<usize> = (0..ds.n_shapes()).collect();
        let s = achievable_score(&ds, &rows, &all);
        assert!((s - 1.0).abs() < 1e-12, "score {s}");
    }

    #[test]
    fn achievable_grows_with_set_size() {
        let ds = ds();
        let rows: Vec<usize> = (0..ds.n_shapes()).collect();
        let small = achievable_score(&ds, &rows, &[0]);
        let bigger = achievable_score(&ds, &rows, &[0, ds.best_config(0)]);
        assert!(bigger >= small);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let ds = ds();
        assert_eq!(achievable_score(&ds, &[0], &[]), 0.0);
        assert_eq!(achievable_score(&ds, &[], &[0]), 0.0);
        assert_eq!(selection_score(&ds, &[], &[]), 0.0);
        assert_eq!(oracle_accuracy(&ds, &[], &[0], &[]), 0.0);
    }

    #[test]
    fn fully_pruned_set_scores_zero_not_epsilon() {
        // On the embedded DSP most configurations are unlaunchable, so
        // their dataset entries are `inf` and their scores 0.0. A shipped
        // set made entirely of them must report exactly 0.0, not the
        // geomean's log-domain epsilon.
        let shapes = vec![
            (GemmShape::new(64, 64, 64), "T".into()),
            (GemmShape::new(512, 512, 512), "T".into()),
        ];
        let ds = PerformanceDataset::collect(&DeviceSpec::edge_dsp(), &shapes).unwrap();
        let rows: Vec<usize> = (0..ds.n_shapes()).collect();
        let zero_cfgs: Vec<usize> = (0..ds.n_configs())
            .filter(|&c| rows.iter().all(|&i| ds.normalized(i, c) == 0.0))
            .collect();
        assert!(!zero_cfgs.is_empty(), "the DSP must reject some configs");
        assert_eq!(achievable_score(&ds, &rows, &zero_cfgs), 0.0);
        let chosen = vec![zero_cfgs[0]; rows.len()];
        assert_eq!(selection_score(&ds, &rows, &chosen), 0.0);
    }

    #[test]
    fn selection_score_bounded_by_achievable() {
        let ds = ds();
        let rows: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = vec![100, 300, ds.best_config(1)];
        let chosen = vec![100; rows.len()];
        let sel = selection_score(&ds, &rows, &chosen);
        let ach = achievable_score(&ds, &rows, &configs);
        assert!(sel <= ach + 1e-12);
    }

    #[test]
    fn oracle_accuracy_one_when_choosing_restricted_best() {
        let ds = ds();
        let rows: Vec<usize> = (0..ds.n_shapes()).collect();
        let configs = vec![5, 200, 616];
        let chosen: Vec<usize> = rows
            .iter()
            .map(|&i| ds.best_config_among(i, &configs).unwrap().1)
            .collect();
        assert_eq!(oracle_accuracy(&ds, &rows, &configs, &chosen), 1.0);
        assert!(
            (selection_score(&ds, &rows, &chosen) - achievable_score(&ds, &rows, &configs)).abs()
                < 1e-12
        );
    }
}
