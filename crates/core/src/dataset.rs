//! The performance dataset: every kernel configuration benchmarked on
//! every GEMM shape, normalised per shape (Section II of the paper).

use crate::{CoreError, Result};
use autokernel_gemm::{model, GemmShape, KernelConfig};
use autokernel_mlkit::Matrix;
use autokernel_sycl_sim::{DeviceSpec, Queue};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One benchmarked (shape, configuration) grid with per-shape
/// normalisation, the object every later stage consumes.
///
/// Rows are shapes, columns are configurations (in
/// [`KernelConfig::all`] order). `normalized[(i, j)] = t_best(i) / t(i, j)`
/// — 1.0 marks the best configuration for that shape, smaller is worse.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerformanceDataset {
    /// The device the dataset was collected on.
    pub device: DeviceSpec,
    /// The benchmarked shapes.
    pub shapes: Vec<GemmShape>,
    /// Network tag per shape (same length as `shapes`), e.g. "VGG16".
    pub networks: Vec<String>,
    /// Raw simulated runtimes in seconds, `shapes.len() × 640`.
    raw_seconds: Vec<Vec<f64>>,
}

/// What a static pre-prune of the benchmark sweep skipped and saved.
///
/// `sim_seconds_saved` is the simulated device time the skipped
/// launches would have been priced at by the old blind sweep — which
/// priced statically invalid configurations too ([`Queue::price`] used
/// to apply no validity check; it now refuses them with the same
/// `SimError` the submit path raises). The counterfactual charge is
/// computed with `Queue::price_unchecked` so the savings account stays
/// comparable across that fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticPruneStats {
    /// Configurations excluded by the mask (out of 640).
    pub pruned_configs: usize,
    /// Individual (shape, config) benchmark launches skipped.
    pub skipped_launches: usize,
    /// Simulated device seconds the skipped launches would have cost.
    pub sim_seconds_saved: f64,
}

impl PerformanceDataset {
    /// Benchmark every configuration on every shape on `device`.
    ///
    /// Uses the timing-only path (the device model prices each launch
    /// without materialising operand buffers), parallelised over shapes.
    pub fn collect(device: &DeviceSpec, shapes: &[(GemmShape, String)]) -> Result<Self> {
        let (dataset, _) = Self::collect_pruned(device, shapes, &[])?;
        Ok(dataset)
    }

    /// [`PerformanceDataset::collect`], minus the configurations marked
    /// in `skip_mask` (indexed by [`KernelConfig::index`]; an empty mask
    /// skips nothing). Skipped entries are recorded as `f64::INFINITY`,
    /// which the normalisation layer already maps to a 0.0 score, so
    /// every consumer sees "never competitive" without a special case.
    ///
    /// This is how the tuning pipeline consumes the static analyzer's
    /// verdicts: configurations proven unlaunchable are never priced,
    /// and the returned [`StaticPruneStats`] reports what that saved.
    pub fn collect_pruned(
        device: &DeviceSpec,
        shapes: &[(GemmShape, String)],
        skip_mask: &[bool],
    ) -> Result<(Self, StaticPruneStats)> {
        if shapes.is_empty() {
            return Err(CoreError::Dataset("no shapes to benchmark".into()));
        }
        let configs = KernelConfig::all();
        if !skip_mask.is_empty() && skip_mask.len() != configs.len() {
            return Err(CoreError::Dataset(format!(
                "skip mask covers {} configs, space has {}",
                skip_mask.len(),
                configs.len()
            )));
        }
        let skip = |j: usize| skip_mask.get(j).copied().unwrap_or(false);
        let dev = Arc::new(device.clone());
        let priced: Vec<(Vec<f64>, f64)> = shapes
            .par_iter()
            .map(|(shape, _)| {
                let queue = Queue::timing_only(dev.clone());
                let mut saved_s = 0.0;
                let row = configs
                    .iter()
                    .enumerate()
                    .map(|(j, cfg)| {
                        let range =
                            model::launch_range(cfg, shape).expect("all configs are launchable");
                        let profile = model::profile(cfg, shape, &dev);
                        let seed = model::noise_seed(cfg, shape);
                        match queue.price(&profile, &range, seed) {
                            Ok((_, duration)) if skip(j) => {
                                saved_s += duration;
                                f64::INFINITY
                            }
                            Ok((_, duration)) => duration,
                            Err(_) => {
                                // `Queue::price` now refuses what submit
                                // would refuse, so an unlaunchable config
                                // is "never competitive" with or without
                                // the mask. When masked, the savings
                                // account still charges the counterfactual
                                // price the old unvalidated sweep paid.
                                if skip(j) {
                                    let (_, duration) =
                                        queue.price_unchecked(&profile, &range, seed);
                                    saved_s += duration;
                                }
                                f64::INFINITY
                            }
                        }
                    })
                    .collect();
                (row, saved_s)
            })
            .collect();

        let pruned_configs = (0..configs.len()).filter(|&j| skip(j)).count();
        let stats = StaticPruneStats {
            pruned_configs,
            skipped_launches: pruned_configs * shapes.len(),
            sim_seconds_saved: priced.iter().map(|(_, s)| s).sum(),
        };
        let raw_seconds = priced.into_iter().map(|(row, _)| row).collect();

        Ok((
            PerformanceDataset {
                device: device.clone(),
                shapes: shapes.iter().map(|(s, _)| *s).collect(),
                networks: shapes.iter().map(|(_, n)| n.clone()).collect(),
                raw_seconds,
            },
            stats,
        ))
    }

    /// Convenience: collect the paper's 170-shape dataset on `device`.
    pub fn collect_paper_dataset(device: &DeviceSpec) -> Result<Self> {
        let tagged: Vec<(GemmShape, String)> = autokernel_workloads::paper_dataset()
            .into_iter()
            .flat_map(|net| {
                net.shapes
                    .into_iter()
                    .map(move |s| (s, net.network.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        Self::collect(device, &tagged)
    }

    /// Number of shapes (rows).
    pub fn n_shapes(&self) -> usize {
        self.shapes.len()
    }

    /// Number of configurations (columns, always 640).
    pub fn n_configs(&self) -> usize {
        KernelConfig::count()
    }

    /// Raw simulated runtime of configuration `config` on shape `shape`.
    pub fn raw_seconds(&self, shape: usize, config: usize) -> f64 {
        self.raw_seconds[shape][config]
    }

    /// Normalised performance of `config` on `shape`:
    /// `best_time / time`, in (0, 1].
    ///
    /// A measurement only counts if it is finite and strictly positive;
    /// anything else (a zero or negative recorded time, an overflow to
    /// infinity, a NaN — e.g. from a hand-edited or truncated JSON
    /// dataset) scores 0.0 rather than poisoning the whole row with
    /// `inf`/`NaN` ratios. A row with no valid measurement normalises
    /// to all zeros.
    pub fn normalized(&self, shape: usize, config: usize) -> f64 {
        let row = &self.raw_seconds[shape];
        normalize(best_valid(row), row[config])
    }

    /// The full normalised matrix (`n_shapes × 640`).
    pub fn normalized_matrix(&self) -> Matrix {
        let cols = self.n_configs();
        let mut m = Matrix::zeros(self.n_shapes(), cols);
        for (i, row) in self.raw_seconds.iter().enumerate() {
            let best = best_valid(row);
            for (j, &t) in row.iter().enumerate() {
                m[(i, j)] = normalize(best, t);
            }
        }
        m
    }

    /// Normalised matrix restricted to a subset of shape rows.
    pub fn normalized_matrix_of(&self, rows: &[usize]) -> Matrix {
        let cols = self.n_configs();
        let mut m = Matrix::zeros(rows.len(), cols);
        for (out_i, &i) in rows.iter().enumerate() {
            let row = &self.raw_seconds[i];
            let best = best_valid(row);
            for (j, &t) in row.iter().enumerate() {
                m[(out_i, j)] = normalize(best, t);
            }
        }
        m
    }

    /// Index of the best configuration for a shape row.
    pub fn best_config(&self, shape: usize) -> usize {
        let row = &self.raw_seconds[shape];
        let mut best = 0;
        for (j, &t) in row.iter().enumerate() {
            if t < row[best] {
                best = j;
            }
        }
        best
    }

    /// Best configuration for `shape` *among* a restricted set; returns
    /// the position within `allowed` as well as the config index.
    pub fn best_config_among(&self, shape: usize, allowed: &[usize]) -> Option<(usize, usize)> {
        let row = &self.raw_seconds[shape];
        // total_cmp: a NaN timing (corrupt import) must not panic the
        // serving path; NaN sorts above every real time, so it simply
        // never wins.
        allowed
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| row[a].total_cmp(&row[b]))
            .map(|(pos, &cfg)| (pos, cfg))
    }

    /// How many shapes each configuration is optimal for (Figure 2).
    /// Returned dense over all 640 configurations.
    pub fn optimal_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_configs()];
        for i in 0..self.n_shapes() {
            counts[self.best_config(i)] += 1;
        }
        counts
    }

    /// Number of distinct configurations that are optimal for at least
    /// one shape (the "long tail" of Figure 2).
    pub fn distinct_optima(&self) -> usize {
        self.optimal_counts().iter().filter(|&&c| c > 0).count()
    }

    /// Mean normalised performance of each configuration across shapes,
    /// the ordering used to sort Figure 1's x-axis.
    pub fn mean_performance(&self) -> Vec<f64> {
        let m = self.normalized_matrix();
        let mut means = vec![0.0; self.n_configs()];
        for i in 0..m.rows() {
            for (mean, &v) in means.iter_mut().zip(m.row(i)) {
                *mean += v;
            }
        }
        let n = self.n_shapes() as f64;
        means.iter_mut().for_each(|v| *v /= n);
        means
    }

    /// GFLOP/s attained by `config` on `shape` (what the paper's
    /// benchmark records alongside runtime).
    pub fn gflops(&self, shape: usize, config: usize) -> f64 {
        self.shapes[shape].flops() / self.raw_seconds(shape, config) / 1e9
    }

    /// Log-scaled feature matrix of the given shape rows (`len × 3`),
    /// the classifier input representation.
    pub fn features_of(&self, rows: &[usize]) -> Matrix {
        let data: Vec<Vec<f64>> = rows
            .iter()
            .map(|&i| self.shapes[i].log_features().to_vec())
            .collect();
        Matrix::from_rows(&data).expect("feature rows are rectangular")
    }

    /// Raw (unscaled) feature matrix of the given shape rows (`len × 3`).
    pub fn raw_features_of(&self, rows: &[usize]) -> Matrix {
        let data: Vec<Vec<f64>> = rows
            .iter()
            .map(|&i| self.shapes[i].features().to_vec())
            .collect();
        Matrix::from_rows(&data).expect("feature rows are rectangular")
    }

    /// Serialise to pretty JSON (the released-dataset analogue).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dataset serialises")
    }

    /// Load a dataset serialised with [`PerformanceDataset::to_json`].
    pub fn from_json(s: &str) -> Result<Self> {
        serde_json::from_str(s).map_err(|e| CoreError::Dataset(e.to_string()))
    }
}

/// Fastest *valid* (finite, strictly positive) time in a row, or `None`
/// when the row is empty or holds no valid measurement.
fn best_valid(row: &[f64]) -> Option<f64> {
    let best = row
        .iter()
        .copied()
        .filter(|t| t.is_finite() && *t > 0.0)
        .fold(f64::INFINITY, f64::min);
    best.is_finite().then_some(best)
}

/// `best / t` for a valid measurement, clamped into [0, 1]; 0.0 when
/// the measurement (or the whole row) is invalid.
fn normalize(best: Option<f64>, t: f64) -> f64 {
    match best {
        Some(best) if t.is_finite() && t > 0.0 => (best / t).clamp(0.0, 1.0),
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> PerformanceDataset {
        let shapes = vec![
            (GemmShape::new(64, 64, 64), "T".to_string()),
            (GemmShape::new(1, 4096, 1000), "T".to_string()),
            (GemmShape::new(12544, 27, 64), "T".to_string()),
            (GemmShape::new(196, 2304, 256), "T".to_string()),
        ];
        PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &shapes).unwrap()
    }

    #[test]
    fn dims_and_normalisation_bounds() {
        let ds = small_dataset();
        assert_eq!(ds.n_shapes(), 4);
        assert_eq!(ds.n_configs(), 640);
        let m = ds.normalized_matrix();
        for i in 0..m.rows() {
            let mut saw_one = false;
            for j in 0..m.cols() {
                let v = m[(i, j)];
                assert!(v > 0.0 && v <= 1.0, "normalised value {v} out of range");
                if (v - 1.0).abs() < 1e-12 {
                    saw_one = true;
                }
            }
            assert!(saw_one, "each row must contain its best config at 1.0");
        }
    }

    #[test]
    fn best_config_is_argmax_of_normalized() {
        let ds = small_dataset();
        for i in 0..ds.n_shapes() {
            let best = ds.best_config(i);
            assert!((ds.normalized(i, best) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn best_config_among_restricted() {
        let ds = small_dataset();
        let allowed = vec![3, 100, 307];
        let (pos, cfg) = ds.best_config_among(0, &allowed).unwrap();
        assert_eq!(allowed[pos], cfg);
        // The restricted best can't beat the global best.
        assert!(ds.normalized(0, cfg) <= 1.0);
        assert!(ds.best_config_among(0, &[]).is_none());
    }

    #[test]
    fn optimal_counts_sum_to_shape_count() {
        let ds = small_dataset();
        let counts = ds.optimal_counts();
        assert_eq!(counts.iter().sum::<usize>(), ds.n_shapes());
        assert!(ds.distinct_optima() >= 1);
    }

    #[test]
    fn deterministic_collection() {
        let a = small_dataset();
        let b = small_dataset();
        for i in 0..a.n_shapes() {
            for j in 0..a.n_configs() {
                assert_eq!(a.raw_seconds(i, j), b.raw_seconds(i, j));
            }
        }
    }

    #[test]
    fn json_roundtrip() {
        let ds = small_dataset();
        let back = PerformanceDataset::from_json(&ds.to_json()).unwrap();
        assert_eq!(back.shapes, ds.shapes);
        let (a, b) = (back.raw_seconds(2, 300), ds.raw_seconds(2, 300));
        assert!((a - b).abs() <= a.abs() * 1e-14, "{a} vs {b}"); // 1 ULP via serde_json
    }

    #[test]
    fn gflops_positive_and_bounded_by_peak() {
        let ds = small_dataset();
        let peak = ds.device.peak_flops / 1e9;
        for i in 0..ds.n_shapes() {
            for j in [0usize, 639, ds.best_config(i)] {
                let g = ds.gflops(i, j);
                assert!(g > 0.0 && g <= peak * 1.05, "gflops {g} vs peak {peak}");
            }
        }
    }

    #[test]
    fn zero_and_negative_times_do_not_poison_normalisation() {
        let mut ds = small_dataset();
        // Corrupt two measurements the way a truncated/hand-edited JSON
        // dataset would: a zero and a negative recorded time.
        ds.raw_seconds[0][5] = 0.0;
        ds.raw_seconds[0][7] = -3.0e-4;
        assert_eq!(ds.normalized(0, 5), 0.0);
        assert_eq!(ds.normalized(0, 7), 0.0);
        let m = ds.normalized_matrix();
        for j in 0..ds.n_configs() {
            let v = m[(0, j)];
            assert!(v.is_finite() && (0.0..=1.0).contains(&v), "value {v}");
        }
        // The valid measurements still normalise against the valid best.
        assert!(m.row(0).iter().any(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn nan_and_infinite_times_score_zero() {
        let mut ds = small_dataset();
        ds.raw_seconds[1][0] = f64::NAN;
        ds.raw_seconds[1][1] = f64::INFINITY;
        assert_eq!(ds.normalized(1, 0), 0.0);
        assert_eq!(ds.normalized(1, 1), 0.0);
        let m = ds.normalized_matrix_of(&[1]);
        for j in 0..ds.n_configs() {
            assert!(m[(0, j)].is_finite());
        }
    }

    #[test]
    fn row_without_valid_measurements_normalises_to_zeros() {
        let mut ds = small_dataset();
        for t in ds.raw_seconds[2].iter_mut() {
            *t = 0.0;
        }
        for j in [0usize, 100, 639] {
            assert_eq!(ds.normalized(2, j), 0.0);
        }
        let m = ds.normalized_matrix();
        assert!(m.row(2).iter().all(|&v| v == 0.0));
        // Other rows are unaffected.
        assert!(m.row(0).iter().any(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn best_valid_handles_empty_rows() {
        assert_eq!(best_valid(&[]), None);
        assert_eq!(best_valid(&[0.0, -1.0, f64::NAN]), None);
        assert_eq!(best_valid(&[2.0, 1.0, 0.0]), Some(1.0));
        assert_eq!(normalize(None, 1.0), 0.0);
        assert_eq!(normalize(Some(1.0), 2.0), 0.5);
    }

    #[test]
    fn collect_rejects_empty() {
        assert!(PerformanceDataset::collect(&DeviceSpec::amd_r9_nano(), &[]).is_err());
    }

    #[test]
    fn features_are_logs() {
        let ds = small_dataset();
        let f = ds.features_of(&[0]);
        assert_eq!(f.row(0), &[6.0, 6.0, 6.0]);
        let rf = ds.raw_features_of(&[0]);
        assert_eq!(rf.row(0), &[64.0, 64.0, 64.0]);
    }
}
