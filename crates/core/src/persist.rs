//! Durable serving-state snapshots with corruption-tolerant warm
//! restart.
//!
//! A serving process accumulates state that is expensive to relearn:
//! per-cluster bandit posteriors and the drift generation in
//! [`crate::online`], the warm decision-cache set with its LRU ticks
//! and Bloom admission counters in [`crate::cache`], measured per-shard
//! cost models and condemnation stamps in [`crate::sched`], and the
//! telemetry histograms operators alarm on. A crash or rolling restart
//! throws all of it away and pays the full ~860-launch adaptation
//! latency again. This module makes that state durable:
//!
//! * **Format** — a versioned envelope (`magic` + format version +
//!   sequence number) of independent *sections*, each the compact
//!   serde_json encoding of one state block with its own CRC-32. The
//!   device spec is itself a section, and its CRC doubles as the
//!   snapshot's device fingerprint.
//! * **Atomic writes** — [`Snapshot::save`] writes `<path>.tmp`, fsyncs
//!   and renames, so a crash mid-write leaves the previous snapshot
//!   intact (a torn rename leaves a stray `.tmp` the loader ignores).
//! * **Corruption-tolerant restore** — every section validates
//!   independently (CRC, parse, shipped-set equality, generation
//!   monotonicity, device fingerprint). A bad section is salvaged
//!   around and named in [`RestoreOutcome::Partial`]; a wholly
//!   unreadable snapshot degrades to [`RestoreOutcome::ColdStart`] with
//!   a typed [`SnapshotError`]. Nothing in the restore path panics.
//! * **Fault injection** — [`SnapshotFaultInjector`] deterministically
//!   corrupts a snapshot file (truncation, bit flips, torn rename,
//!   stale version, wrong device) in the spirit of `sycl-sim`'s fault
//!   plans, so crash-recovery behaviour is testable without real
//!   crashes.
//! * **Cross-device transplant** — [`Snapshot::transplant`] re-seeds a
//!   fresh device's bandit priors from another device's measured arm
//!   evidence, and [`nearest`] picks the donor snapshot whose device
//!   spec is closest in log-feature space — the "train once, warm-start
//!   everywhere" reuse the follow-up paper argues for.
//!
//! The background snapshotter lives in [`crate::ingress`]: the
//! dispatcher captures the fleet every
//! [`SnapshotterConfig::every_chunks`] chunks and once more on drain,
//! and [`crate::Ingress::start_restored`] warm-starts a scheduler from
//! the last snapshot on disk.

use crate::online::OnlineSelector;
use crate::sched::ShardedScheduler;
use autokernel_gemm::GemmShape;
use autokernel_sycl_sim::DeviceSpec;
use serde::Value;
use std::path::{Path, PathBuf};

/// Magic string opening every snapshot envelope.
pub const SNAPSHOT_MAGIC: &str = "autokernel-snapshot";

/// The snapshot format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Reflected CRC-32 (IEEE, polynomial `0xEDB88320`) over `bytes` —
/// the per-section checksum. Bitwise (no table) because snapshots are
/// written at background cadence, not on the launch hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &byte in bytes {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// The device fingerprint: CRC-32 of the device spec's compact JSON
/// encoding. Restore refuses to apply learned state to a device whose
/// fingerprint differs (use [`Snapshot::transplant`] instead).
pub fn device_fingerprint(spec: &DeviceSpec) -> u32 {
    match serde_json::to_string(spec) {
        Ok(json) => crc32(json.as_bytes()),
        // A spec that cannot serialise can never match a stored CRC;
        // the sentinel makes the mismatch explicit rather than silent.
        Err(_) => u32::MAX,
    }
}

// ---------------------------------------------------------------------
// Serialisable state blocks (captured/applied by their owning modules).
// ---------------------------------------------------------------------

/// One bandit arm's statistics (`core::online`'s `Arm`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ArmState {
    /// Offline prior performance in `[0, 1]`.
    pub prior: f64,
    /// Times this arm was charged with an outcome.
    pub pulls: u64,
    /// Completed launches among `pulls`.
    pub completions: u64,
    /// Total simulated seconds across completions.
    pub sum_duration_s: f64,
    /// Structurally rejected this generation.
    pub disabled: bool,
}

/// One shape-cluster's bandit state. Arms with `pulls == 0` are the
/// forced-sampling frontier: the adaptive stage samples them first in
/// prior order, so the cursor survives the round trip implicitly.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ClusterSnapshot {
    /// The cluster's lattice point in quantised log-shape space.
    pub key: [i64; 3],
    /// One arm per shipped slot, in shipped order.
    pub arms: Vec<ArmState>,
}

/// The online layer's full learned state.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct OnlineState {
    /// Whether the adaptive (post-drift) stage was active.
    pub adaptive: bool,
    /// Selector generation at capture time.
    pub generation: u64,
    /// The shipped configuration indices (restore refuses a mismatch).
    pub shipped: Vec<usize>,
    /// Page–Hinkley sample count.
    pub ph_n: u64,
    /// Page–Hinkley running mean.
    pub ph_mean_x: f64,
    /// Page–Hinkley cumulative statistic.
    pub ph_m: f64,
    /// Page–Hinkley running minimum of `ph_m`.
    pub ph_min_m: f64,
    /// Per-cluster arms, sorted by key for deterministic encoding.
    pub clusters: Vec<ClusterSnapshot>,
}

/// One warm decision-cache entry.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CacheEntryState {
    /// The memoised shape.
    pub shape: GemmShape,
    /// The decided global configuration index.
    pub config_index: usize,
    /// The entry's LRU stamp.
    pub last_used: u64,
}

/// One cache shard's live entries and LRU tick.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CacheShardState {
    /// The shard's LRU tick counter.
    pub tick: u64,
    /// Live (current-generation) entries.
    pub entries: Vec<CacheEntryState>,
}

/// The counting-Bloom admission filter's counters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BloomState {
    /// Probe count `k`.
    pub hashes: u32,
    /// Total observations so far.
    pub observed: u64,
    /// The 8-bit counters, widened for the JSON shim.
    pub counters: Vec<u64>,
}

/// The sharded decision cache's warm state.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CacheState {
    /// Cache generation at capture time.
    pub generation: u64,
    /// Per-shard entries and ticks.
    pub shards: Vec<CacheShardState>,
    /// Admission-filter counters (bounded mode only).
    pub bloom: Option<BloomState>,
}

/// Outcome counters of a cache-state restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheRestoreStats {
    /// Entries re-inserted into the live cache.
    pub entries_restored: u64,
    /// Entries skipped (capacity pressure or an unknown config index).
    pub entries_skipped: u64,
    /// Whether the Bloom counters were applied (false on a
    /// shape/config mismatch between snapshot and live filter).
    pub bloom_restored: bool,
}

/// A full copy of [`crate::SelectionTelemetry`]'s counters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TelemetryState {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Accumulated hit latency, nanoseconds.
    pub hit_nanos: u64,
    /// Accumulated miss latency, nanoseconds.
    pub miss_nanos: u64,
    /// The shipped set the pick counters are aligned with.
    pub shipped: Vec<usize>,
    /// Pick count per shipped slot.
    pub picks: Vec<u64>,
    /// Launches completed through the resilient executor.
    pub resilient_launches: u64,
    /// Failed launch attempts absorbed.
    pub launch_failures: u64,
    /// Same-configuration retries.
    pub retries: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Quarantine skips.
    pub quarantine_skips: u64,
    /// Next-best fallbacks.
    pub fallback_next_best: u64,
    /// Reference-GEMM fallbacks.
    pub fallback_reference: u64,
    /// Statically invalid configs skipped.
    pub fallback_skipped_invalid: u64,
    /// Rewards fed into the bandit.
    pub reward_updates: u64,
    /// Drift-detector trips.
    pub drift_events: u64,
    /// Adaptive-stage primary picks.
    pub adaptive_picks: u64,
    /// Stale-generation rewards dropped.
    pub stale_rewards_dropped: u64,
    /// Decision-latency histogram bucket counts
    /// ([`crate::cache::LATENCY_BUCKETS`] entries).
    pub latency_buckets: Vec<u64>,
}

/// One fleet shard's durable state.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FleetShardState {
    /// The shard's label (the restore-time match key).
    pub label: String,
    /// Fingerprint of the shard's own device spec.
    pub device_crc: u32,
    /// Whether the shard was live.
    pub alive: bool,
    /// Requests served (cumulative).
    pub served: u64,
    /// Batches executed (cumulative).
    pub batches: u64,
    /// Reference-GEMM degradations (cumulative).
    pub reference_fallbacks: u64,
    /// FLOPs completed under the scheduler — the measured cost model's
    /// numerator.
    pub flops_done: f64,
    /// Device-clock seconds elapsed since the shard joined — the
    /// measured cost model's denominator.
    pub elapsed_s: f64,
    /// Condemnation stamp (0 = never condemned).
    pub condemned_seq: u64,
    /// The shard's online layer, when it has one.
    pub online: Option<OnlineState>,
    /// The shard's decision cache.
    pub cache: CacheState,
    /// The shard's telemetry block.
    pub telemetry: TelemetryState,
}

/// The whole fleet's durable state.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FleetState {
    /// The scheduler's condemnation-stamp source.
    pub condemn_counter: u64,
    /// Per-shard state, in shard order.
    pub shards: Vec<FleetShardState>,
}

// ---------------------------------------------------------------------
// Errors and outcomes.
// ---------------------------------------------------------------------

/// Why a snapshot could not be read or applied. Every variant is a
/// degraded-but-typed path: callers fall back to cold start, never
/// panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(String),
    /// The envelope is not parseable (or its device section is gone, so
    /// provenance cannot be verified).
    Malformed(String),
    /// The file does not open with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The envelope's format version is not the supported one.
    VersionSkew {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The snapshot was captured on a different device.
    DeviceMismatch {
        /// Fingerprint of the live device.
        expected: u32,
        /// Fingerprint stored in the snapshot.
        found: u32,
    },
    /// The envelope was readable but no section could be applied.
    NothingRestored,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Malformed(e) => write!(f, "malformed snapshot: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::VersionSkew { found, supported } => {
                write!(f, "snapshot version {found} unsupported (want {supported})")
            }
            SnapshotError::DeviceMismatch { expected, found } => write!(
                f,
                "snapshot device fingerprint {found:#010x} does not match live device {expected:#010x}"
            ),
            SnapshotError::NothingRestored => {
                write!(f, "snapshot had no applicable sections")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// What a restore achieved. `Partial` names every dropped piece so the
/// degradation is observable; `ColdStart` means the caller should serve
/// from scratch exactly as if no snapshot existed.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreOutcome {
    /// Every section applied cleanly.
    Full,
    /// Some sections applied; the named pieces were salvaged around.
    Partial {
        /// Section (or sub-section) names that failed validation.
        dropped: Vec<String>,
    },
    /// Nothing usable: serve cold, with the typed reason.
    ColdStart {
        /// Why the snapshot was unusable.
        error: SnapshotError,
    },
}

impl RestoreOutcome {
    /// Whether any learned state was recovered.
    pub fn is_warm(&self) -> bool {
        !matches!(self, RestoreOutcome::ColdStart { .. })
    }

    /// The dropped-section names (empty unless `Partial`).
    pub fn dropped(&self) -> &[String] {
        match self {
            RestoreOutcome::Partial { dropped } => dropped,
            _ => &[],
        }
    }
}

// ---------------------------------------------------------------------
// The snapshot itself.
// ---------------------------------------------------------------------

/// A point-in-time capture of the learned serving state, round-tripped
/// through the versioned, checksummed envelope described in the module
/// docs.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_VERSION`] when written by this
    /// build).
    pub version: u32,
    /// Monotone sequence number stamped by the snapshotter.
    pub seq: u64,
    /// The device the state was learned on.
    pub device: DeviceSpec,
    /// The device section's CRC — the snapshot's device fingerprint.
    pub device_crc: u32,
    /// The online layer's state, when captured.
    pub online: Option<OnlineState>,
    /// The decision cache's state, when captured.
    pub cache: Option<CacheState>,
    /// The telemetry counters, when captured.
    pub telemetry: Option<TelemetryState>,
    /// The fleet scheduler's state, when captured.
    pub fleet: Option<FleetState>,
    /// Sections dropped while *loading* (CRC or parse failures); merged
    /// into the restore outcome.
    pub dropped: Vec<String>,
}

impl Snapshot {
    /// An empty snapshot fingerprinted for `device`.
    pub fn new(device: &DeviceSpec) -> Self {
        Snapshot {
            version: SNAPSHOT_VERSION,
            seq: 0,
            device: device.clone(),
            device_crc: device_fingerprint(device),
            online: None,
            cache: None,
            telemetry: None,
            fleet: None,
            dropped: Vec::new(),
        }
    }

    /// The same snapshot with sequence number `seq`.
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Capture a single-device serving stack: the online layer plus the
    /// decision cache and telemetry behind it.
    pub fn capture_stack(mut self, online: &OnlineSelector) -> Self {
        self.online = Some(online.export_state());
        let serving = online.cached();
        self.cache = Some(serving.cache().export_state());
        self.telemetry = Some(serving.telemetry().export_state());
        self
    }

    /// Capture a whole fleet: per-shard cost models, health, and each
    /// shard's nested online/cache/telemetry state.
    pub fn capture_fleet(mut self, scheduler: &ShardedScheduler) -> Self {
        self.fleet = Some(scheduler.export_state());
        self
    }

    /// Encode the envelope as compact JSON: magic, version, sequence,
    /// then one `{name, crc, body}` object per captured section, each
    /// body an independently checksummed compact-JSON string.
    pub fn to_json(&self) -> Result<String, SnapshotError> {
        let mut sections = Vec::new();
        sections.push(encode_section("device", &self.device)?);
        if let Some(state) = &self.online {
            sections.push(encode_section("online", state)?);
        }
        if let Some(state) = &self.cache {
            sections.push(encode_section("cache", state)?);
        }
        if let Some(state) = &self.telemetry {
            sections.push(encode_section("telemetry", state)?);
        }
        if let Some(state) = &self.fleet {
            sections.push(encode_section("fleet", state)?);
        }
        let envelope = Value::Object(vec![
            ("magic".to_string(), Value::Str(SNAPSHOT_MAGIC.to_string())),
            ("version".to_string(), Value::Num(self.version as f64)),
            ("seq".to_string(), Value::Num(self.seq as f64)),
            ("sections".to_string(), Value::Array(sections)),
        ]);
        serde_json::to_string(&envelope).map_err(|e| SnapshotError::Malformed(e.to_string()))
    }

    /// Decode an envelope. Hard failures (unparseable envelope, bad
    /// magic, version skew, unverifiable device) are typed errors;
    /// individual section failures (CRC mismatch, parse failure,
    /// unknown name) land in [`Snapshot::dropped`] and the rest of the
    /// snapshot is salvaged.
    pub fn from_json(text: &str) -> Result<Snapshot, SnapshotError> {
        let root: Value =
            serde_json::from_str(text).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        if root.get("magic").and_then(Value::as_str) != Some(SNAPSHOT_MAGIC) {
            return Err(SnapshotError::BadMagic);
        }
        let version = root
            .get("version")
            .and_then(Value::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .unwrap_or(0);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionSkew {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let seq = root.get("seq").and_then(Value::as_u64).unwrap_or(0);
        let sections = root
            .get("sections")
            .and_then(Value::as_array)
            .ok_or_else(|| SnapshotError::Malformed("missing sections array".into()))?;

        let mut dropped = Vec::new();
        let mut device: Option<(DeviceSpec, u32)> = None;
        let mut online = None;
        let mut cache = None;
        let mut telemetry = None;
        let mut fleet = None;
        for section in sections {
            let name = section
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string();
            let crc = section.get("crc").and_then(Value::as_u64);
            let body = section.get("body").and_then(Value::as_str);
            let (Some(crc), Some(body)) = (crc, body) else {
                dropped.push(name);
                continue;
            };
            if u64::from(crc32(body.as_bytes())) != crc {
                dropped.push(name);
                continue;
            }
            match name.as_str() {
                "device" => match serde_json::from_str::<DeviceSpec>(body) {
                    Ok(spec) => device = Some((spec, crc as u32)),
                    Err(_) => dropped.push(name),
                },
                "online" => match serde_json::from_str::<OnlineState>(body) {
                    Ok(state) => online = Some(state),
                    Err(_) => dropped.push(name),
                },
                "cache" => match serde_json::from_str::<CacheState>(body) {
                    Ok(state) => cache = Some(state),
                    Err(_) => dropped.push(name),
                },
                "telemetry" => match serde_json::from_str::<TelemetryState>(body) {
                    Ok(state) => telemetry = Some(state),
                    Err(_) => dropped.push(name),
                },
                "fleet" => match serde_json::from_str::<FleetState>(body) {
                    Ok(state) => fleet = Some(state),
                    Err(_) => dropped.push(name),
                },
                _ => dropped.push(name),
            }
        }
        // Without a verifiable device section the learned state has no
        // provenance; applying it blind could poison a mismatched
        // device, so the whole snapshot is refused (cold start).
        let Some((device, device_crc)) = device else {
            return Err(SnapshotError::Malformed(
                "device section missing or corrupt: provenance unverifiable".into(),
            ));
        };
        Ok(Snapshot {
            version,
            seq,
            device,
            device_crc,
            online,
            cache,
            telemetry,
            fleet,
            dropped,
        })
    }

    /// Atomically persist the snapshot: write `<path>.tmp`, fsync,
    /// rename over `path`. A crash at any point leaves either the old
    /// snapshot or the new one — never a torn file at `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let json = self.to_json()?;
        let tmp = tmp_path(path);
        let io = |e: std::io::Error| SnapshotError::Io(e.to_string());
        {
            use std::io::Write as _;
            let mut file = std::fs::File::create(&tmp).map_err(io)?;
            file.write_all(json.as_bytes()).map_err(io)?;
            file.sync_all().map_err(io)?;
        }
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Load a snapshot from disk ([`Snapshot::from_json`] semantics).
    /// Stray `.tmp` files from torn renames are never read.
    pub fn load(path: impl AsRef<Path>) -> Result<Snapshot, SnapshotError> {
        let text =
            std::fs::read_to_string(path.as_ref()).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::from_json(&text)
    }

    /// Apply the snapshot to a single-device serving stack. `device` is
    /// the stack's live device spec; a fingerprint mismatch refuses the
    /// whole snapshot (use [`Snapshot::transplant`] for cross-device
    /// seeding). Sections validate independently: a failed one is named
    /// in [`RestoreOutcome::Partial`] while the rest apply. A restored
    /// selector that was adaptive resumes adaptive with its priors and
    /// arm evidence intact.
    pub fn restore_stack(&self, online: &OnlineSelector, device: &DeviceSpec) -> RestoreOutcome {
        let expected = device_fingerprint(device);
        if expected != self.device_crc {
            return RestoreOutcome::ColdStart {
                error: SnapshotError::DeviceMismatch {
                    expected,
                    found: self.device_crc,
                },
            };
        }
        let mut dropped = self.dropped.clone();
        let mut applied = 0usize;
        match &self.online {
            Some(state) => match online.restore_state(state) {
                Ok(0) => applied += 1,
                Ok(bad_clusters) => {
                    applied += 1;
                    dropped.push(format!("online:{bad_clusters}-clusters"));
                }
                Err(reason) => dropped.push(format!("online: {reason}")),
            },
            None => note_missing(&mut dropped, "online"),
        }
        let serving = online.cached();
        match &self.cache {
            Some(state) => {
                match serving
                    .cache()
                    .restore_state(state, serving.selector().configs())
                {
                    Ok(stats) => {
                        applied += 1;
                        if stats.entries_skipped > 0 {
                            dropped.push(format!("cache:{}-entries", stats.entries_skipped));
                        }
                        if !stats.bloom_restored {
                            dropped.push("cache.bloom".to_string());
                        }
                    }
                    Err(reason) => dropped.push(format!("cache: {reason}")),
                }
            }
            None => note_missing(&mut dropped, "cache"),
        }
        match &self.telemetry {
            Some(state) => match serving.telemetry().restore_state(state) {
                Ok(()) => applied += 1,
                Err(reason) => dropped.push(format!("telemetry: {reason}")),
            },
            None => note_missing(&mut dropped, "telemetry"),
        }
        if applied == 0 {
            return RestoreOutcome::ColdStart {
                error: SnapshotError::NothingRestored,
            };
        }
        if dropped.is_empty() {
            RestoreOutcome::Full
        } else {
            RestoreOutcome::Partial { dropped }
        }
    }

    /// Apply a fleet snapshot to a live scheduler. Shards match by
    /// label; each shard re-checks its own device fingerprint, and
    /// every nested section (cost model, online, cache, telemetry)
    /// validates independently with `fleet.<label>.<piece>` names in
    /// the partial outcome.
    pub fn restore_fleet(
        &self,
        scheduler: &mut ShardedScheduler,
        device: &DeviceSpec,
    ) -> RestoreOutcome {
        let expected = device_fingerprint(device);
        if expected != self.device_crc {
            return RestoreOutcome::ColdStart {
                error: SnapshotError::DeviceMismatch {
                    expected,
                    found: self.device_crc,
                },
            };
        }
        let Some(state) = &self.fleet else {
            return RestoreOutcome::ColdStart {
                error: SnapshotError::NothingRestored,
            };
        };
        let mut dropped = self.dropped.clone();
        dropped.extend(scheduler.restore_state(state));
        if dropped.is_empty() {
            RestoreOutcome::Full
        } else {
            RestoreOutcome::Partial { dropped }
        }
    }

    /// Re-seed a *different* device's bandit from this snapshot's
    /// measured evidence (ROADMAP's train-once/warm-start-everywhere
    /// item). Per cluster, every arm with completions folds its
    /// relative performance (`best_mean / mean`, discounted by
    /// completion rate) into the prior; pull counts, durations and the
    /// drift detector reset, because absolute timings do not transfer
    /// across devices while relative rankings largely do. The result
    /// carries `to`'s fingerprint and starts Adaptive, so the fresh
    /// device explores from the donor's ranking instead of from
    /// scratch. Device-specific sections (cache, telemetry, fleet) are
    /// deliberately not carried over.
    pub fn transplant(&self, to: &DeviceSpec) -> Snapshot {
        let online = self.online.as_ref().map(|state| OnlineState {
            adaptive: true,
            generation: state.generation,
            shipped: state.shipped.clone(),
            ph_n: 0,
            ph_mean_x: 0.0,
            ph_m: 0.0,
            ph_min_m: 0.0,
            clusters: state
                .clusters
                .iter()
                .map(|cluster| ClusterSnapshot {
                    key: cluster.key,
                    arms: transplant_arms(&cluster.arms),
                })
                .collect(),
        });
        Snapshot {
            version: SNAPSHOT_VERSION,
            seq: 0,
            device: to.clone(),
            device_crc: device_fingerprint(to),
            online,
            cache: None,
            telemetry: None,
            fleet: None,
            dropped: Vec::new(),
        }
    }
}

/// Fold one cluster's measured evidence into fresh transplant priors.
fn transplant_arms(arms: &[ArmState]) -> Vec<ArmState> {
    let best_mean = arms
        .iter()
        .filter(|a| a.completions > 0 && a.sum_duration_s > 0.0)
        .map(|a| a.sum_duration_s / a.completions as f64)
        .fold(f64::INFINITY, f64::min);
    arms.iter()
        .map(|a| {
            let prior = if a.completions > 0 && a.sum_duration_s > 0.0 && best_mean.is_finite() {
                let mean = a.sum_duration_s / a.completions as f64;
                let completion_rate = a.completions as f64 / a.pulls.max(1) as f64;
                ((best_mean / mean).clamp(0.0, 1.0) * completion_rate).clamp(0.0, 1.0)
            } else {
                a.prior.clamp(0.0, 1.0)
            };
            ArmState {
                prior: if prior.is_finite() { prior } else { 0.0 },
                pulls: 0,
                completions: 0,
                sum_duration_s: 0.0,
                disabled: false,
            }
        })
        .collect()
}

/// Record a missing section, unless loading already recorded a failure
/// for it (a CRC-dropped section should not be reported twice).
fn note_missing(dropped: &mut Vec<String>, name: &str) {
    let already = dropped.iter().any(|d| {
        d == name || d.starts_with(&format!("{name}:")) || d.starts_with(&format!("{name}."))
    });
    if !already {
        dropped.push(format!("{name}:missing"));
    }
}

fn encode_section<T: serde::Serialize>(name: &str, value: &T) -> Result<Value, SnapshotError> {
    let body = serde_json::to_string(value)
        .map_err(|e| SnapshotError::Malformed(format!("{name}: {e}")))?;
    let crc = crc32(body.as_bytes());
    Ok(Value::Object(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("crc".to_string(), Value::Num(crc as f64)),
        ("body".to_string(), Value::Str(body)),
    ]))
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

// ---------------------------------------------------------------------
// Spec-space distance for cross-device warm start.
// ---------------------------------------------------------------------

fn spec_features(spec: &DeviceSpec) -> [f64; 12] {
    [
        spec.compute_units as f64,
        spec.wave_width as f64,
        spec.simds_per_cu as f64,
        spec.max_waves_per_simd as f64,
        spec.vgprs_per_simd as f64,
        spec.lds_bytes_per_cu as f64,
        spec.max_work_group_size as f64,
        spec.peak_flops,
        spec.mem_bandwidth,
        spec.cache_bandwidth,
        spec.launch_overhead,
        spec.mem_latency,
    ]
}

/// RMS distance between two device specs in log-feature space: scale
/// differences (a 10× faster clock, a 4× wider SIMD) count by ratio,
/// not absolute magnitude, so "nearest profiled device" means nearest
/// in architecture shape.
pub fn spec_distance(a: &DeviceSpec, b: &DeviceSpec) -> f64 {
    let fa = spec_features(a);
    let fb = spec_features(b);
    let mut sum = 0.0;
    for (x, y) in fa.iter().zip(fb.iter()) {
        let d = x.max(1e-12).ln() - y.max(1e-12).ln();
        sum += d * d;
    }
    (sum / fa.len() as f64).sqrt()
}

/// The snapshot whose device is nearest to `to` by [`spec_distance`] —
/// the donor [`Snapshot::transplant`] should seed a fresh device from.
pub fn nearest<'a>(snapshots: &'a [Snapshot], to: &DeviceSpec) -> Option<&'a Snapshot> {
    snapshots.iter().min_by(|a, b| {
        spec_distance(&a.device, to)
            .total_cmp(&spec_distance(&b.device, to))
            .then(a.seq.cmp(&b.seq))
    })
}

// ---------------------------------------------------------------------
// Background snapshotter configuration (driven by `crate::ingress`).
// ---------------------------------------------------------------------

/// Where, how often, and for which device the ingress dispatcher writes
/// snapshots.
#[derive(Debug, Clone)]
pub struct SnapshotterConfig {
    /// The snapshot file (written atomically via `<path>.tmp`).
    pub path: PathBuf,
    /// Capture every N dispatched chunks (0 disables the cadence; the
    /// final on-drain snapshot is still taken).
    pub every_chunks: u64,
    /// The fleet's front-door device spec, fingerprinted into every
    /// snapshot and checked on restore.
    pub device: DeviceSpec,
}

impl SnapshotterConfig {
    /// Snapshot to `path` for `device`, every 8 chunks by default.
    pub fn new(path: impl Into<PathBuf>, device: DeviceSpec) -> Self {
        SnapshotterConfig {
            path: path.into(),
            every_chunks: 8,
            device,
        }
    }

    /// The same config with a different chunk cadence.
    pub fn with_cadence(mut self, every_chunks: u64) -> Self {
        self.every_chunks = every_chunks;
        self
    }
}

// ---------------------------------------------------------------------
// Deterministic snapshot-fault injection.
// ---------------------------------------------------------------------

/// One way to corrupt a snapshot file, in the spirit of
/// `sycl-sim::fault`'s seeded fault plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SnapshotFault {
    /// Keep only the leading `keep_fraction` of the file (a crash
    /// mid-write without the atomic rename, or a torn disk).
    Truncate {
        /// Fraction of the file to keep, clamped to `[0, 1]`.
        keep_fraction: f64,
    },
    /// Flip `count` seeded-pseudorandom bits anywhere in the file.
    BitFlips {
        /// Number of bit flips to inject.
        count: u32,
    },
    /// Simulate a crash between the temp-file write and the rename: a
    /// half-written `<path>.tmp` appears, the real file is untouched.
    TornRename,
    /// Rewrite the envelope's format version to an unsupported value.
    StaleVersion,
    /// Re-tag a valid snapshot with a different device spec — learned
    /// state with the wrong provenance.
    WrongDevice,
}

impl SnapshotFault {
    /// A short label for reports and test names.
    pub fn label(&self) -> &'static str {
        match self {
            SnapshotFault::Truncate { .. } => "truncate",
            SnapshotFault::BitFlips { .. } => "bit-flips",
            SnapshotFault::TornRename => "torn-rename",
            SnapshotFault::StaleVersion => "stale-version",
            SnapshotFault::WrongDevice => "wrong-device",
        }
    }
}

/// Applies [`SnapshotFault`]s to snapshot files, deterministically from
/// a seed: the same seed and fault always produce the same corruption.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotFaultInjector {
    seed: u64,
}

impl SnapshotFaultInjector {
    /// An injector drawing its pseudorandomness from `seed`.
    pub fn new(seed: u64) -> Self {
        SnapshotFaultInjector { seed }
    }

    /// Corrupt the snapshot at `path` with `fault`. Truncation and bit
    /// flips rewrite the file in place; a torn rename writes a partial
    /// `<path>.tmp` beside it; stale-version and wrong-device rewrite
    /// it as a well-formed file with the poisoned field.
    pub fn inject(&self, path: impl AsRef<Path>, fault: &SnapshotFault) -> std::io::Result<()> {
        let path = path.as_ref();
        match fault {
            SnapshotFault::Truncate { keep_fraction } => {
                let bytes = std::fs::read(path)?;
                let keep = (bytes.len() as f64 * keep_fraction.clamp(0.0, 1.0)) as usize;
                std::fs::write(path, bytes.get(..keep).unwrap_or(&bytes))
            }
            SnapshotFault::BitFlips { count } => {
                let mut bytes = std::fs::read(path)?;
                if bytes.is_empty() {
                    return Ok(());
                }
                let len = bytes.len() as u64;
                for i in 0..*count {
                    let r = splitmix(self.seed, i as u64);
                    if let Some(byte) = bytes.get_mut((r % len) as usize) {
                        *byte ^= 1 << ((r >> 48) % 8);
                    }
                }
                std::fs::write(path, bytes)
            }
            SnapshotFault::TornRename => {
                let bytes = std::fs::read(path)?;
                let half = bytes.len() / 2;
                std::fs::write(tmp_path(path), bytes.get(..half).unwrap_or(&bytes))
            }
            SnapshotFault::StaleVersion => {
                let text = std::fs::read_to_string(path)?;
                let from = format!("\"version\":{SNAPSHOT_VERSION}");
                let poisoned = text.replacen(&from, "\"version\":4294967295", 1);
                std::fs::write(path, poisoned)
            }
            SnapshotFault::WrongDevice => {
                let snapshot = Snapshot::load(path).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("wrong-device injection needs a loadable snapshot: {e}"),
                    )
                })?;
                let other = [
                    DeviceSpec::host_cpu(),
                    DeviceSpec::desktop_gpu(),
                    DeviceSpec::edge_dsp(),
                ]
                .into_iter()
                .find(|c| device_fingerprint(c) != snapshot.device_crc)
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "no alternate device preset differs from the snapshot's",
                    )
                })?;
                let mut retagged = snapshot;
                retagged.device_crc = device_fingerprint(&other);
                retagged.device = other;
                retagged.save(path).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })
            }
        }
    }
}

/// SplitMix64-style mix of `(seed, i)` — the same finalizer
/// `sycl-sim::fault` uses for its deterministic uniform draws.
fn splitmix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let device = DeviceSpec::amd_r9_nano();
        let snapshot = Snapshot::new(&device).with_seq(7);
        let json = snapshot.to_json().unwrap();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back.version, SNAPSHOT_VERSION);
        assert_eq!(back.seq, 7);
        assert_eq!(back.device_crc, snapshot.device_crc);
        assert_eq!(back.device, device);
        assert!(back.dropped.is_empty());
    }

    #[test]
    fn bad_magic_and_garbage_are_typed() {
        assert!(matches!(
            Snapshot::from_json("{\"magic\":\"nope\",\"version\":1,\"sections\":[]}"),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            Snapshot::from_json("not json at all"),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn version_skew_is_typed() {
        let json = Snapshot::new(&DeviceSpec::amd_r9_nano())
            .to_json()
            .unwrap()
            .replacen("\"version\":1", "\"version\":9", 1);
        assert!(matches!(
            Snapshot::from_json(&json),
            Err(SnapshotError::VersionSkew {
                found: 9,
                supported: SNAPSHOT_VERSION
            })
        ));
    }

    #[test]
    fn fingerprints_distinguish_presets() {
        let nano = device_fingerprint(&DeviceSpec::amd_r9_nano());
        let edge = device_fingerprint(&DeviceSpec::edge_dsp());
        assert_ne!(nano, edge);
        // Stable across calls (compact JSON is deterministic).
        assert_eq!(nano, device_fingerprint(&DeviceSpec::amd_r9_nano()));
    }

    #[test]
    fn spec_distance_orders_devices_sensibly() {
        let nano = DeviceSpec::amd_r9_nano();
        assert_eq!(spec_distance(&nano, &nano), 0.0);
        let to_gpu = spec_distance(&nano, &DeviceSpec::desktop_gpu());
        let to_dsp = spec_distance(&nano, &DeviceSpec::edge_dsp());
        assert!(
            to_gpu < to_dsp,
            "a desktop GPU is nearer a GPU than an edge DSP ({to_gpu} vs {to_dsp})"
        );
    }

    #[test]
    fn nearest_picks_the_closest_donor() {
        let snapshots = vec![
            Snapshot::new(&DeviceSpec::edge_dsp()),
            Snapshot::new(&DeviceSpec::desktop_gpu()),
            Snapshot::new(&DeviceSpec::host_cpu()),
        ];
        let donor = nearest(&snapshots, &DeviceSpec::amd_r9_nano()).unwrap();
        assert_eq!(donor.device, DeviceSpec::desktop_gpu());
    }

    #[test]
    fn transplant_folds_evidence_into_priors() {
        let mut snapshot = Snapshot::new(&DeviceSpec::amd_r9_nano());
        snapshot.online = Some(OnlineState {
            adaptive: true,
            generation: 3,
            shipped: vec![10, 20],
            ph_n: 40,
            ph_mean_x: 1.0,
            ph_m: 0.5,
            ph_min_m: -0.5,
            clusters: vec![ClusterSnapshot {
                key: [1, 2, 3],
                arms: vec![
                    ArmState {
                        prior: 0.2,
                        pulls: 10,
                        completions: 10,
                        sum_duration_s: 1.0, // mean 0.1 — the fast arm
                        disabled: false,
                    },
                    ArmState {
                        prior: 0.9,
                        pulls: 10,
                        completions: 10,
                        sum_duration_s: 4.0, // mean 0.4 — 4x slower
                        disabled: true,
                    },
                ],
            }],
        });
        let transplanted = snapshot.transplant(&DeviceSpec::edge_dsp());
        assert_eq!(
            transplanted.device_crc,
            device_fingerprint(&DeviceSpec::edge_dsp())
        );
        let online = transplanted.online.unwrap();
        assert!(online.adaptive);
        assert_eq!(online.ph_n, 0, "drift detector resets");
        let arms = &online.clusters[0].arms;
        assert!(
            (arms[0].prior - 1.0).abs() < 1e-12,
            "fast arm seeds prior 1"
        );
        assert!(
            (arms[1].prior - 0.25).abs() < 1e-12,
            "4x slower arm seeds 0.25"
        );
        assert_eq!(arms[0].pulls, 0, "evidence resets to priors only");
        assert!(!arms[1].disabled, "disabled flags do not transfer");
        assert!(transplanted.cache.is_none() && transplanted.telemetry.is_none());
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let a: Vec<u64> = (0..8).map(|i| splitmix(42, i)).collect();
        let b: Vec<u64> = (0..8).map(|i| splitmix(42, i)).collect();
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(distinct.len(), 8);
    }
}
