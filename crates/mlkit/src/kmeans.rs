//! K-means clustering with k-means++ initialisation (Lloyd's algorithm).

use crate::matrix::Matrix;
use crate::{MlError, Result};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// K-means estimator.
///
/// Deterministic given `seed`. `n_init` restarts are run and the solution
/// with the lowest inertia is kept, mirroring sklearn's `KMeans`.
///
/// ```
/// use autokernel_mlkit::{KMeans, Matrix};
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![0.2], vec![9.8], vec![10.0],
/// ]).unwrap();
/// let mut km = KMeans::new(2, 42);
/// km.fit(&x).unwrap();
/// let labels = km.labels().unwrap();
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    n_init: usize,
    tol: f64,
    seed: u64,
    fitted: Option<FittedKMeans>,
}

/// Fitted k-means state.
#[derive(Debug, Clone)]
struct FittedKMeans {
    centroids: Matrix,
    labels: Vec<usize>,
    inertia: f64,
}

impl KMeans {
    /// Create a k-means estimator with `k` clusters and the given seed.
    pub fn new(k: usize, seed: u64) -> Self {
        KMeans {
            k,
            max_iter: 300,
            n_init: 10,
            tol: 1e-8,
            seed,
            fitted: None,
        }
    }

    /// Maximum Lloyd iterations per restart (default 300).
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Number of random restarts (default 10).
    pub fn with_n_init(mut self, n_init: usize) -> Self {
        self.n_init = n_init;
        self
    }

    /// Fit on `x` (`n_samples × n_features`).
    pub fn fit(&mut self, x: &Matrix) -> Result<&mut Self> {
        if self.k == 0 {
            return Err(MlError::BadParam("k must be >= 1".into()));
        }
        if x.rows() < self.k {
            return Err(MlError::BadShape(format!(
                "cannot form {} clusters from {} samples",
                self.k,
                x.rows()
            )));
        }
        let mut best: Option<FittedKMeans> = None;
        for restart in 0..self.n_init.max(1) {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(restart as u64));
            let run = self.run_once(x, &mut rng);
            if best.as_ref().is_none_or(|b| run.inertia < b.inertia) {
                best = Some(run);
            }
        }
        self.fitted = best;
        Ok(self)
    }

    fn run_once(&self, x: &Matrix, rng: &mut StdRng) -> FittedKMeans {
        let n = x.rows();
        let d = x.cols();
        let mut centroids = self.init_plus_plus(x, rng);
        let mut labels = vec![0usize; n];
        let mut inertia = f64::INFINITY;

        for _ in 0..self.max_iter {
            // Assignment step.
            let mut new_inertia = 0.0;
            for (lbl, row) in labels.iter_mut().zip(x.rows_iter()) {
                let (l, d2) = nearest(row, &centroids);
                *lbl = l;
                new_inertia += d2;
            }
            // Update step.
            let mut sums = Matrix::zeros(self.k, d);
            let mut counts = vec![0usize; self.k];
            for (row, &lbl) in x.rows_iter().zip(&labels) {
                if let Some(c) = counts.get_mut(lbl) {
                    *c += 1;
                }
                for (s, &v) in sums.row_mut(lbl).iter_mut().zip(row) {
                    *s += v;
                }
            }
            for (c, count) in counts.iter_mut().enumerate() {
                if *count == 0 {
                    // Re-seed an empty cluster from the point farthest from
                    // its centroid, the standard fix-up. `total_cmp` keeps
                    // the argmax total when a NaN feature yields a NaN
                    // distance: the poisoned point ranks "farthest" (a
                    // harmless re-seed) where the old
                    // `partial_cmp(..).unwrap()` panicked.
                    let far = x
                        .rows_iter()
                        .zip(&labels)
                        .map(|(row, &l)| Matrix::sq_dist(row, centroids.row(l)))
                        .enumerate()
                        .max_by(|(_, da), (_, db)| da.total_cmp(db))
                        .map(|(i, _)| i)
                        .unwrap_or(rng.random_range(0..n));
                    sums.row_mut(c).copy_from_slice(x.row(far));
                    *count = 1;
                }
                let inv = 1.0 / *count as f64;
                for s in sums.row_mut(c) {
                    *s *= inv;
                }
            }
            let moved: f64 = (0..self.k)
                .map(|c| Matrix::sq_dist(sums.row(c), centroids.row(c)))
                .sum();
            centroids = sums;
            let converged = moved <= self.tol || (inertia - new_inertia).abs() <= self.tol;
            inertia = new_inertia;
            if converged {
                break;
            }
        }
        // Final assignment against the final centroids.
        let mut final_inertia = 0.0;
        for (lbl, row) in labels.iter_mut().zip(x.rows_iter()) {
            let (l, d2) = nearest(row, &centroids);
            *lbl = l;
            final_inertia += d2;
        }
        FittedKMeans {
            centroids,
            labels,
            inertia: final_inertia,
        }
    }

    /// k-means++ seeding: each next centre is drawn proportionally to its
    /// squared distance from the nearest already-chosen centre.
    fn init_plus_plus(&self, x: &Matrix, rng: &mut StdRng) -> Matrix {
        let n = x.rows();
        let d = x.cols();
        let mut centroids = Matrix::zeros(self.k, d);
        let first = rng.random_range(0..n);
        centroids.row_mut(0).copy_from_slice(x.row(first));

        let mut d2: Vec<f64> = x
            .rows_iter()
            .map(|r| Matrix::sq_dist(r, centroids.row(0)))
            .collect();

        for c in 1..self.k {
            let total: f64 = d2.iter().sum();
            let chosen = if total <= 0.0 {
                rng.random_range(0..n)
            } else {
                let mut target = rng.random::<f64>() * total;
                let mut idx = n - 1;
                for (i, &w) in d2.iter().enumerate() {
                    if target < w {
                        idx = i;
                        break;
                    }
                    target -= w;
                }
                idx
            };
            centroids.row_mut(c).copy_from_slice(x.row(chosen));
            for (slot, row) in d2.iter_mut().zip(x.rows_iter()) {
                let nd = Matrix::sq_dist(row, centroids.row(c));
                if nd < *slot {
                    *slot = nd;
                }
            }
        }
        centroids
    }

    /// Cluster centroids (`k × n_features`).
    pub fn centroids(&self) -> Result<&Matrix> {
        Ok(&self.fitted.as_ref().ok_or(MlError::NotFitted)?.centroids)
    }

    /// Training-set labels.
    pub fn labels(&self) -> Result<&[usize]> {
        Ok(&self.fitted.as_ref().ok_or(MlError::NotFitted)?.labels)
    }

    /// Sum of squared distances of samples to their nearest centroid.
    pub fn inertia(&self) -> Result<f64> {
        Ok(self.fitted.as_ref().ok_or(MlError::NotFitted)?.inertia)
    }

    /// Assign each row of `x` to its nearest fitted centroid.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        if x.cols() != f.centroids.cols() {
            return Err(MlError::BadShape("predict feature count mismatch".into()));
        }
        Ok(x.rows_iter().map(|r| nearest(r, &f.centroids).0).collect())
    }

    /// Index of the training sample closest to each centroid (the medoid),
    /// used to map abstract cluster centres back onto real dataset rows.
    pub fn medoid_indices(&self, x: &Matrix) -> Result<Vec<usize>> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        let mut medoids = vec![usize::MAX; self.k];
        let mut best = vec![f64::INFINITY; self.k];
        for (i, row) in x.rows_iter().enumerate() {
            for (c, (b, m)) in best.iter_mut().zip(medoids.iter_mut()).enumerate() {
                let d2 = Matrix::sq_dist(row, f.centroids.row(c));
                if d2 < *b {
                    *b = d2;
                    *m = i;
                }
            }
        }
        Ok(medoids)
    }
}

fn nearest(row: &[f64], centroids: &Matrix) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for c in 0..centroids.rows() {
        let d2 = Matrix::sq_dist(row, centroids.row(c));
        if d2 < best.1 {
            best = (c, d2);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs on a line.
    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for c in 0..3 {
            let centre = c as f64 * 100.0;
            for i in 0..10 {
                rows.push(vec![centre + (i as f64) * 0.1, centre - (i as f64) * 0.05]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_separated_blobs() {
        let x = blobs();
        let mut km = KMeans::new(3, 7);
        km.fit(&x).unwrap();
        let labels = km.labels().unwrap();
        // All members of each blob share a label; the three labels differ.
        for b in 0..3 {
            let first = labels[b * 10];
            assert!(labels[b * 10..(b + 1) * 10].iter().all(|&l| l == first));
        }
        let mut distinct: Vec<usize> = labels.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let x = blobs();
        let mut prev = f64::INFINITY;
        for k in 1..=4 {
            let mut km = KMeans::new(k, 3);
            km.fit(&x).unwrap();
            let inertia = km.inertia().unwrap();
            assert!(inertia <= prev + 1e-9, "inertia rose at k={k}");
            prev = inertia;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let x = blobs();
        let mut a = KMeans::new(3, 42);
        let mut b = KMeans::new(3, 42);
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.labels().unwrap(), b.labels().unwrap());
        assert_eq!(a.inertia().unwrap(), b.inertia().unwrap());
    }

    #[test]
    fn predict_matches_training_labels() {
        let x = blobs();
        let mut km = KMeans::new(3, 1);
        km.fit(&x).unwrap();
        assert_eq!(&km.predict(&x).unwrap(), km.labels().unwrap());
    }

    #[test]
    fn medoids_are_members_of_their_cluster() {
        let x = blobs();
        let mut km = KMeans::new(3, 5);
        km.fit(&x).unwrap();
        let medoids = km.medoid_indices(&x).unwrap();
        let labels = km.labels().unwrap();
        for (c, &m) in medoids.iter().enumerate() {
            assert!(m < x.rows());
            assert_eq!(labels[m], c, "medoid of cluster {c} not labelled {c}");
        }
    }

    #[test]
    fn nan_feature_row_does_not_panic_fit_or_predict() {
        // Regression: duplicated points force an empty cluster, whose
        // farthest-point re-seed compared NaN distances with
        // `partial_cmp(..).unwrap()` and panicked when a poisoned row
        // was present. `total_cmp` must absorb it.
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![f64::NAN, 0.0],
        ])
        .unwrap();
        let mut km = KMeans::new(3, 13);
        km.fit(&x).unwrap();
        let labels = km.labels().unwrap();
        assert_eq!(labels.len(), 4);
        assert!(labels.iter().all(|&l| l < 3));
        let probe = Matrix::from_rows(&[vec![0.0, 0.0], vec![f64::NAN, f64::NAN]]).unwrap();
        for l in km.predict(&probe).unwrap() {
            assert!(l < 3);
        }
    }

    #[test]
    fn rejects_k_larger_than_samples_and_k_zero() {
        let x = blobs();
        assert!(KMeans::new(0, 0).fit(&x).is_err());
        assert!(KMeans::new(31, 0).fit(&x).is_err());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 10.0, 0.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut km = KMeans::new(5, 11);
        km.fit(&x).unwrap();
        assert!(km.inertia().unwrap() < 1e-9);
    }
}
