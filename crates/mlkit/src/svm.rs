//! Support vector classification trained with a simplified SMO solver.
//!
//! Binary soft-margin SVMs with linear or RBF kernels, lifted to
//! multiclass with one-vs-one voting (libsvm's scheme), matching
//! sklearn's `SVC(kernel="linear")` and `SVC(kernel="rbf")` as used by
//! the paper's Table I.

use crate::matrix::Matrix;
use crate::{MlError, Result};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Kernel for the SVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SvmKernel {
    /// Dot-product kernel.
    Linear,
    /// Gaussian kernel `exp(-gamma * ||a - b||²)`.
    Rbf {
        /// Kernel width parameter.
        gamma: f64,
    },
}

impl SvmKernel {
    #[inline]
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            SvmKernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            SvmKernel::Rbf { gamma } => (-gamma * Matrix::sq_dist(a, b)).exp(),
        }
    }
}

/// One binary SVM trained by SMO.
#[derive(Debug, Clone)]
struct BinarySvm {
    /// alpha_i * y_i for support vectors.
    dual_coef: Vec<f64>,
    support: Matrix,
    bias: f64,
}

impl BinarySvm {
    fn decision(&self, kernel: SvmKernel, sample: &[f64]) -> f64 {
        let mut sum = self.bias;
        for (i, &coef) in self.dual_coef.iter().enumerate() {
            sum += coef * kernel.eval(self.support.row(i), sample);
        }
        sum
    }
}

/// Multiclass support vector classifier (one-vs-one, as in sklearn's
/// `SVC`).
#[derive(Debug, Clone)]
pub struct Svc {
    kernel: SvmKernel,
    c: f64,
    tol: f64,
    max_passes: usize,
    seed: u64,
    classes: Vec<usize>,
    /// One machine per unordered class pair `(a, b)`, with `a` as the
    /// positive side.
    machines: Vec<(usize, usize, BinarySvm)>,
}

impl Svc {
    /// Create a classifier with the given kernel and regularisation `C`.
    pub fn new(kernel: SvmKernel, c: f64, seed: u64) -> Self {
        Svc {
            kernel,
            c,
            tol: 1e-3,
            max_passes: 5,
            seed,
            classes: Vec::new(),
            machines: Vec::new(),
        }
    }

    /// Override the number of violation-free sweeps required to stop
    /// (default 5). More passes = tighter convergence.
    pub fn with_max_passes(mut self, passes: usize) -> Self {
        self.max_passes = passes.max(1);
        self
    }

    /// A `gamma` matching sklearn's `"scale"` default:
    /// `1 / (n_features * Var(X))`.
    pub fn scale_gamma(x: &Matrix) -> f64 {
        let means = x.col_means();
        let n = (x.rows() * x.cols()).max(1) as f64;
        let var: f64 = x
            .rows_iter()
            .flat_map(|r| r.iter().zip(&means).map(|(v, m)| (v - m) * (v - m)))
            .sum::<f64>()
            / n;
        if var > 0.0 {
            1.0 / (x.cols() as f64 * var)
        } else {
            1.0
        }
    }

    /// Fit on features `x` and labels `y`.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<&mut Self> {
        if x.rows() != y.len() || x.rows() == 0 {
            return Err(MlError::BadShape(
                "x rows must equal y length (nonzero)".into(),
            ));
        }
        if self.c <= 0.0 {
            return Err(MlError::BadParam("C must be positive".into()));
        }
        let mut classes: Vec<usize> = y.to_vec();
        classes.sort_unstable();
        classes.dedup();
        if classes.len() < 2 {
            // Degenerate: a single class — decision is constant.
            self.classes = classes;
            self.machines.clear();
            return Ok(self);
        }

        let mut machines = Vec::new();
        for (ia, &a) in classes.iter().enumerate() {
            for &b in &classes[ia + 1..] {
                // Restrict to the samples of the two classes.
                let mut rows = Vec::new();
                let mut signs = Vec::new();
                for (i, &l) in y.iter().enumerate() {
                    if l == a || l == b {
                        rows.push(x.row(i).to_vec());
                        signs.push(if l == a { 1.0 } else { -1.0 });
                    }
                }
                let pair_x = Matrix::from_rows(&rows)?;
                let seed = self
                    .seed
                    .wrapping_add((a as u64) << 20)
                    .wrapping_add(b as u64);
                machines.push((a, b, self.train_binary(&pair_x, &signs, seed)));
            }
        }
        self.machines = machines;
        self.classes = classes;
        Ok(self)
    }

    /// Simplified SMO (Platt 1998 via the CS229 simplification): iterate
    /// over multipliers violating the KKT conditions, jointly optimising
    /// random pairs until `max_passes` consecutive sweeps change nothing.
    fn train_binary(&self, x: &Matrix, y: &[f64], seed: u64) -> BinarySvm {
        let n = x.rows();
        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(seed);

        // Precompute the kernel matrix: n <= a few hundred in this crate.
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.kernel.eval(x.row(i), x.row(j));
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        let f = |alpha: &[f64], b: f64, i: usize, k: &Matrix| -> f64 {
            let mut s = b;
            for j in 0..n {
                if alpha[j] != 0.0 {
                    s += alpha[j] * y[j] * k[(j, i)];
                }
            }
            s
        };

        let mut passes = 0usize;
        let mut iters = 0usize;
        let max_iters = 200 * n.max(1);
        while passes < self.max_passes && iters < max_iters {
            iters += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let ei = f(&alpha, b, i, &k) - y[i];
                let violates = (y[i] * ei < -self.tol && alpha[i] < self.c)
                    || (y[i] * ei > self.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                let mut j = rng.random_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, b, j, &k) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > 0.5 {
                    (
                        (aj_old - ai_old).max(0.0),
                        (self.c + aj_old - ai_old).min(self.c),
                    )
                } else {
                    (
                        (ai_old + aj_old - self.c).max(0.0),
                        (ai_old + aj_old).min(self.c),
                    )
                };
                if (hi - lo).abs() < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k[(i, j)] - k[(i, i)] - k[(j, j)];
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-7 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;

                let b1 =
                    b - ei - y[i] * (ai - ai_old) * k[(i, i)] - y[j] * (aj - aj_old) * k[(i, j)];
                let b2 =
                    b - ej - y[i] * (ai - ai_old) * k[(i, j)] - y[j] * (aj - aj_old) * k[(j, j)];
                b = if ai > 0.0 && ai < self.c {
                    b1
                } else if aj > 0.0 && aj < self.c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                changed += 1;
            }
            passes = if changed == 0 { passes + 1 } else { 0 };
        }

        // Keep only support vectors.
        let mut dual_coef = Vec::new();
        let mut rows = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-9 {
                dual_coef.push(alpha[i] * y[i]);
                rows.push(x.row(i).to_vec());
            }
        }
        let support = if rows.is_empty() {
            Matrix::zeros(0, x.cols())
        } else {
            Matrix::from_rows(&rows).expect("support rows are rectangular")
        };
        BinarySvm {
            dual_coef,
            support,
            bias: b,
        }
    }

    /// Predict a class per row by one-vs-one voting (ties broken by the
    /// summed decision margins, as in libsvm).
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        if self.classes.is_empty() {
            return Err(MlError::NotFitted);
        }
        if self.classes.len() == 1 {
            return Ok(vec![self.classes[0]; x.rows()]);
        }
        Ok(x.rows_iter()
            .map(|row| {
                let mut votes = vec![0usize; self.classes.len()];
                let mut margins = vec![0.0f64; self.classes.len()];
                for (a, b, m) in &self.machines {
                    let d = m.decision(self.kernel, row);
                    let ia = self.classes.binary_search(a).expect("known class");
                    let ib = self.classes.binary_search(b).expect("known class");
                    if d >= 0.0 {
                        votes[ia] += 1;
                    } else {
                        votes[ib] += 1;
                    }
                    margins[ia] += d;
                    margins[ib] -= d;
                }
                let best = (0..self.classes.len())
                    .max_by(|&i, &j| {
                        votes[i]
                            .cmp(&votes[j])
                            .then(margins[i].total_cmp(&margins[j]))
                    })
                    .expect("non-empty classes");
                self.classes[best]
            })
            .collect())
    }

    /// Total number of support vectors across the pairwise machines.
    pub fn n_support_vectors(&self) -> usize {
        self.machines
            .iter()
            .map(|(_, _, m)| m.dual_coef.len())
            .sum()
    }

    /// Class labels known to the classifier.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let t = i as f64 * 0.3;
            rows.push(vec![t, t + 5.0]);
            labels.push(0);
            rows.push(vec![t + 5.0, t]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn linear_svm_separates_linear_data() {
        let (x, y) = linearly_separable();
        let mut svm = Svc::new(SvmKernel::Linear, 1.0, 3);
        svm.fit(&x, &y).unwrap();
        assert_eq!(svm.predict(&x).unwrap(), y);
    }

    #[test]
    fn nan_poisoned_prediction_rows_do_not_panic() {
        // A NaN feature row makes every pairwise decision margin NaN.
        // The vote tiebreak used to panic on partial_cmp(..).unwrap();
        // it must now return *some* known class for the poisoned row and
        // keep classifying clean rows correctly.
        let (x, y) = linearly_separable();
        let mut svm = Svc::new(SvmKernel::Linear, 1.0, 3);
        svm.fit(&x, &y).unwrap();

        let mut rows: Vec<Vec<f64>> = x.rows_iter().map(|r| r.to_vec()).collect();
        rows.push(vec![f64::NAN, 1.0]);
        rows.push(vec![f64::NAN, f64::NAN]);
        let poisoned = Matrix::from_rows(&rows).unwrap();
        let pred = svm.predict(&poisoned).unwrap();
        assert_eq!(pred.len(), rows.len());
        assert_eq!(&pred[..y.len()], &y[..], "clean rows must stay correct");
        for &p in &pred[y.len()..] {
            assert!(svm.classes().contains(&p), "pick must be a known class");
        }
    }

    #[test]
    fn rbf_svm_separates_ring_data() {
        // Inner blob vs outer ring: not linearly separable.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..24 {
            let a = i as f64 * 0.26;
            rows.push(vec![0.3 * a.cos(), 0.3 * a.sin()]);
            labels.push(0);
            rows.push(vec![3.0 * a.cos(), 3.0 * a.sin()]);
            labels.push(1);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut rbf = Svc::new(SvmKernel::Rbf { gamma: 1.0 }, 10.0, 5);
        rbf.fit(&x, &labels).unwrap();
        let acc = rbf
            .predict(&x)
            .unwrap()
            .iter()
            .zip(&labels)
            .filter(|(a, b)| a == b)
            .count() as f64
            / labels.len() as f64;
        assert!(acc > 0.95, "rbf accuracy {acc}");

        // A linear machine cannot get this right.
        let mut lin = Svc::new(SvmKernel::Linear, 10.0, 5);
        lin.fit(&x, &labels).unwrap();
        let lin_acc = lin
            .predict(&x)
            .unwrap()
            .iter()
            .zip(&labels)
            .filter(|(a, b)| a == b)
            .count() as f64
            / labels.len() as f64;
        assert!(
            lin_acc < acc,
            "linear should lose on rings: {lin_acc} vs {acc}"
        );
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (cx, cy, l) in [(0.0, 0.0, 7usize), (10.0, 0.0, 11), (0.0, 10.0, 13)] {
            for i in 0..10 {
                rows.push(vec![cx + (i % 3) as f64 * 0.2, cy + (i % 4) as f64 * 0.2]);
                labels.push(l);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut svm = Svc::new(SvmKernel::Linear, 10.0, 1);
        svm.fit(&x, &labels).unwrap();
        let pred = svm.predict(&x).unwrap();
        let acc =
            pred.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        assert!(acc > 0.9, "multiclass accuracy {acc}");
        // Predictions use original label values.
        for p in pred {
            assert!([7, 11, 13].contains(&p));
        }
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let mut svm = Svc::new(SvmKernel::Linear, 1.0, 0);
        svm.fit(&x, &[5, 5]).unwrap();
        assert_eq!(svm.predict(&x).unwrap(), vec![5, 5]);
    }

    #[test]
    fn scale_gamma_is_positive_and_shrinks_with_variance() {
        let tight = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.1, 0.1], vec![0.2, 0.0]]).unwrap();
        let wide = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 10.0], vec![20.0, 0.0]]).unwrap();
        let gt = Svc::scale_gamma(&tight);
        let gw = Svc::scale_gamma(&wide);
        assert!(gt > 0.0 && gw > 0.0);
        assert!(gw < gt, "higher variance should give smaller gamma");
    }

    #[test]
    fn errors_on_unfitted_and_bad_params() {
        let svm = Svc::new(SvmKernel::Linear, 1.0, 0);
        assert!(svm.predict(&Matrix::zeros(1, 2)).is_err());
        let (x, y) = linearly_separable();
        assert!(Svc::new(SvmKernel::Linear, -1.0, 0).fit(&x, &y).is_err());
    }
}
