//! Brute-force k-nearest-neighbour classification.

use crate::matrix::Matrix;
use crate::{MlError, Result};

/// k-NN classifier (Euclidean distance, majority vote, nearest-neighbour
/// tie-break as in sklearn's default).
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    k: usize,
    x: Option<Matrix>,
    y: Vec<usize>,
}

impl KNearestNeighbors {
    /// Create a classifier voting over `k` neighbours.
    pub fn new(k: usize) -> Self {
        KNearestNeighbors {
            k,
            x: None,
            y: Vec::new(),
        }
    }

    /// Memorise the training data.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<&mut Self> {
        if self.k == 0 {
            return Err(MlError::BadParam("k must be >= 1".into()));
        }
        if x.rows() != y.len() || x.rows() == 0 {
            return Err(MlError::BadShape(
                "x rows must equal y length (nonzero)".into(),
            ));
        }
        if x.rows() < self.k {
            return Err(MlError::BadShape(format!(
                "k={} exceeds {} training samples",
                self.k,
                x.rows()
            )));
        }
        self.x = Some(x.clone());
        self.y = y.to_vec();
        Ok(self)
    }

    /// Predict a label for each row of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        let train = self.x.as_ref().ok_or(MlError::NotFitted)?;
        if x.cols() != train.cols() {
            return Err(MlError::BadShape("feature count differs from fit".into()));
        }
        let mut out = Vec::with_capacity(x.rows());
        for row in x.rows_iter() {
            // (distance, train index, label). `total_cmp` keeps the sort
            // total when a poisoned feature yields a NaN distance: NaN
            // orders after every real distance, so it can neither panic
            // the comparator nor displace a genuine neighbour.
            let mut d: Vec<(f64, usize, usize)> = train
                .rows_iter()
                .zip(self.y.iter().copied())
                .enumerate()
                .map(|(i, (t, label))| (Matrix::sq_dist(row, t), i, label))
                .collect();
            d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            // Majority vote; on a tie prefer the label of the closer
            // neighbour (sklearn behaviour for uniform weights).
            let mut counts: Vec<(usize, usize, usize)> = Vec::new(); // (label, count, first_rank)
            for (rank, &(_, _, label)) in d.iter().take(self.k).enumerate() {
                match counts.iter_mut().find(|(l, _, _)| *l == label) {
                    Some(entry) => entry.1 += 1,
                    None => counts.push((label, 1, rank)),
                }
            }
            counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)));
            out.push(counts.first().map(|c| c.0).ok_or(MlError::NotFitted)?);
        }
        Ok(out)
    }

    /// Number of neighbours voted over.
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            rows.push(vec![i as f64 * 0.1, 0.0]);
            labels.push(0);
            rows.push(vec![100.0 + i as f64 * 0.1, 0.0]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn one_nn_memorises_training_set() {
        let (x, y) = two_blobs();
        let mut knn = KNearestNeighbors::new(1);
        knn.fit(&x, &y).unwrap();
        assert_eq!(knn.predict(&x).unwrap(), y);
    }

    #[test]
    fn three_nn_classifies_midpoints_correctly() {
        let (x, y) = two_blobs();
        let mut knn = KNearestNeighbors::new(3);
        knn.fit(&x, &y).unwrap();
        let probe = Matrix::from_rows(&[vec![1.0, 0.0], vec![99.0, 0.0]]).unwrap();
        assert_eq!(knn.predict(&probe).unwrap(), vec![0, 1]);
    }

    #[test]
    fn tie_break_prefers_closer_label() {
        // k=2 with one neighbour from each class: the closer one must win.
        let x = Matrix::from_rows(&[vec![0.0], vec![10.0]]).unwrap();
        let y = vec![3usize, 8usize];
        let mut knn = KNearestNeighbors::new(2);
        knn.fit(&x, &y).unwrap();
        let probe = Matrix::from_rows(&[vec![1.0], vec![9.0]]).unwrap();
        assert_eq!(knn.predict(&probe).unwrap(), vec![3, 8]);
    }

    #[test]
    fn nan_training_row_cannot_panic_or_win_the_vote() {
        // Regression: the neighbour sort used `partial_cmp(..).unwrap()`,
        // which panicked the first time a NaN distance appeared. Under
        // `total_cmp` the poisoned row sorts last and never gets a vote.
        let (x, y) = two_blobs();
        let mut rows: Vec<Vec<f64>> = x.rows_iter().map(|r| r.to_vec()).collect();
        let mut labels = y.clone();
        rows.push(vec![f64::NAN, f64::NAN]);
        labels.push(7);
        let poisoned = Matrix::from_rows(&rows).unwrap();
        let mut knn = KNearestNeighbors::new(3);
        knn.fit(&poisoned, &labels).unwrap();
        let probe = Matrix::from_rows(&[vec![0.5, 0.0], vec![100.5, 0.0]]).unwrap();
        assert_eq!(knn.predict(&probe).unwrap(), vec![0, 1]);
    }

    #[test]
    fn errors_on_bad_params_and_unfitted() {
        let (x, y) = two_blobs();
        assert!(KNearestNeighbors::new(0).fit(&x, &y).is_err());
        assert!(KNearestNeighbors::new(21).fit(&x, &y).is_err());
        let knn = KNearestNeighbors::new(1);
        assert!(knn.predict(&x).is_err());
        let mut knn = KNearestNeighbors::new(1);
        knn.fit(&x, &y).unwrap();
        assert!(knn.predict(&Matrix::zeros(1, 5)).is_err());
    }
}
