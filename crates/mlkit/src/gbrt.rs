//! Gradient-boosted regression trees (squared loss).
//!
//! The paper's related work (Bergstra, Pinto & Cox 2012) uses boosted
//! regression trees for *predictive* auto-tuning — regressing runtime
//! from configuration/shape features instead of classifying directly.
//! This estimator powers the repository's regression-selection
//! extension (`autokernel-core::select::RegressionSelector`).

use crate::matrix::Matrix;
use crate::tree::{DecisionTreeRegressor, TreeParams};
use crate::{MlError, Result};

/// Gradient boosting with least-squares loss: each stage fits a shallow
/// tree to the current residuals and is added with a learning rate.
#[derive(Debug, Clone)]
pub struct GradientBoostingRegressor {
    n_estimators: usize,
    learning_rate: f64,
    max_depth: usize,
    base: f64,
    stages: Vec<DecisionTreeRegressor>,
}

impl GradientBoostingRegressor {
    /// Create a booster (`n_estimators` stages of depth-`max_depth`
    /// trees blended at `learning_rate`).
    pub fn new(n_estimators: usize, learning_rate: f64, max_depth: usize) -> Self {
        GradientBoostingRegressor {
            n_estimators,
            learning_rate,
            max_depth,
            base: 0.0,
            stages: Vec::new(),
        }
    }

    /// Fit on features `x` and single-output targets `y`.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<&mut Self> {
        if x.rows() != y.len() || x.rows() == 0 {
            return Err(MlError::BadShape(
                "x rows must equal y length (nonzero)".into(),
            ));
        }
        if self.n_estimators == 0 {
            return Err(MlError::BadParam("n_estimators must be >= 1".into()));
        }
        if self.learning_rate <= 0.0 || self.learning_rate > 1.0 {
            return Err(MlError::BadParam("learning_rate must be in (0, 1]".into()));
        }
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        let mut pred = vec![self.base; y.len()];
        self.stages.clear();

        for _ in 0..self.n_estimators {
            let residuals: Vec<Vec<f64>> =
                y.iter().zip(&pred).map(|(&t, &p)| vec![t - p]).collect();
            let r = Matrix::from_rows(&residuals).expect("residual rows are rectangular");
            let mut tree = DecisionTreeRegressor::new(TreeParams {
                max_depth: Some(self.max_depth),
                min_samples_leaf: 2,
                ..TreeParams::default()
            });
            tree.fit(x, &r)?;
            let stage_pred = tree.predict(x)?;
            let mut improved = false;
            for (p, i) in pred.iter_mut().zip(0..x.rows()) {
                let delta = self.learning_rate * stage_pred[(i, 0)];
                if delta != 0.0 {
                    improved = true;
                }
                *p += delta;
            }
            self.stages.push(tree);
            if !improved {
                break; // Residuals are flat: further stages are no-ops.
            }
        }
        Ok(self)
    }

    /// Predict one value per row of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.stages.is_empty() {
            return Err(MlError::NotFitted);
        }
        let mut out = vec![self.base; x.rows()];
        for stage in &self.stages {
            let p = stage.predict(x)?;
            for (o, i) in out.iter_mut().zip(0..x.rows()) {
                *o += self.learning_rate * p[(i, 0)];
            }
        }
        Ok(out)
    }

    /// Number of fitted stages (may be fewer than requested when
    /// residuals flatten early).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Training-set mean squared error.
    pub fn train_mse(&self, x: &Matrix, y: &[f64]) -> Result<f64> {
        let pred = self.predict(x)?;
        Ok(pred
            .iter()
            .zip(y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.2]).collect();
        let y: Vec<f64> = (0..60)
            .map(|i| (i as f64 * 0.2).sin() * 3.0 + 1.0)
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn boosting_beats_a_single_stump() {
        let (x, y) = wavy();
        let mut single = GradientBoostingRegressor::new(1, 1.0, 2);
        single.fit(&x, &y).unwrap();
        let mut boosted = GradientBoostingRegressor::new(100, 0.2, 2);
        boosted.fit(&x, &y).unwrap();
        let e1 = single.train_mse(&x, &y).unwrap();
        let e2 = boosted.train_mse(&x, &y).unwrap();
        assert!(e2 < e1 * 0.2, "boosted {e2} vs single {e1}");
    }

    #[test]
    fn training_error_decreases_with_stages() {
        let (x, y) = wavy();
        let mut prev = f64::INFINITY;
        for n in [1usize, 5, 25, 100] {
            let mut g = GradientBoostingRegressor::new(n, 0.3, 2);
            g.fit(&x, &y).unwrap();
            let e = g.train_mse(&x, &y).unwrap();
            assert!(e <= prev + 1e-12, "mse rose to {e} at {n} stages");
            prev = e;
        }
    }

    #[test]
    fn constant_target_fits_in_one_stage() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y = vec![5.0; 10];
        let mut g = GradientBoostingRegressor::new(50, 0.5, 3);
        g.fit(&x, &y).unwrap();
        assert!(g.n_stages() < 50, "flat residuals must stop boosting early");
        for p in g.predict(&x).unwrap() {
            assert!((p - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_params_and_unfitted() {
        let (x, y) = wavy();
        assert!(GradientBoostingRegressor::new(0, 0.1, 2)
            .fit(&x, &y)
            .is_err());
        assert!(GradientBoostingRegressor::new(5, 0.0, 2)
            .fit(&x, &y)
            .is_err());
        assert!(GradientBoostingRegressor::new(5, 1.5, 2)
            .fit(&x, &y)
            .is_err());
        let g = GradientBoostingRegressor::new(5, 0.1, 2);
        assert!(g.predict(&x).is_err());
        let mut g = GradientBoostingRegressor::new(5, 0.1, 2);
        assert!(g.fit(&Matrix::zeros(3, 1), &[1.0, 2.0]).is_err());
    }

    #[test]
    fn deterministic() {
        let (x, y) = wavy();
        let mut a = GradientBoostingRegressor::new(20, 0.3, 3);
        let mut b = GradientBoostingRegressor::new(20, 0.3, 3);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }
}
