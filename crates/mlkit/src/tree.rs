//! CART decision trees: classification (Gini) and multi-output regression
//! (variance reduction), with sklearn-compatible growth controls.
//!
//! Two growth strategies are provided, matching the two ways the paper
//! uses trees:
//!
//! - depth-first growth bounded by `max_depth` (runtime classifiers), and
//! - **best-first** growth bounded by `max_leaf_nodes` (the pruning
//!   regressor: limiting leaves limits the number of distinct predicted
//!   performance vectors, which become the cluster representatives).
//!
//! Both estimators share one builder; classification one-hot encodes its
//! labels so that Gini and multi-output MSE reduce to the same
//! sufficient statistics (per-output sums and squared sums).

use crate::matrix::Matrix;
use crate::{MlError, Result};

/// Node of a fitted tree. Exposed publicly so the deployment codegen in
/// `autokernel-core` can serialise trees as nested `if` statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Internal split: `feature <= threshold` goes left, else right.
    Split {
        /// Feature index tested at this node.
        feature: usize,
        /// Split threshold (midpoint between adjacent sorted values).
        threshold: f64,
        /// Index of the left child in the node arena.
        left: usize,
        /// Index of the right child in the node arena.
        right: usize,
        /// Impurity decrease achieved by this split (criterion units),
        /// accumulated into feature importances.
        gain: f64,
    },
    /// Leaf carrying the mean target vector (regression) or class-count
    /// distribution (classification) of its training samples.
    Leaf {
        /// Mean target / class distribution.
        value: Vec<f64>,
        /// Training samples that reached this leaf.
        n_samples: usize,
    },
}

/// Split criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Criterion {
    /// Sum of per-output squared deviations (multi-output MSE).
    Mse,
    /// Gini impurity over one-hot encoded class labels.
    Gini,
}

/// Growth hyper-parameters shared by both tree estimators.
#[derive(Debug, Clone)]
pub struct TreeParams {
    /// Maximum depth (`None` = unbounded).
    pub max_depth: Option<usize>,
    /// Maximum number of leaves; when set, growth is best-first.
    pub max_leaf_nodes: Option<usize>,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Number of features examined per split (`None` = all). Used by
    /// random forests for feature subsampling.
    pub max_features: Option<usize>,
    /// Seed for feature subsampling order.
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: None,
            max_leaf_nodes: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

/// The fitted tree shared by classifier and regressor.
#[derive(Debug, Clone)]
pub struct FittedTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_outputs: usize,
}

impl FittedTree {
    /// The node arena; node 0 is the root.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Depth of the tree (root-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Route one sample to its leaf value.
    pub fn decide(&self, sample: &[f64]) -> &[f64] {
        let mut id = 0usize;
        loop {
            match &self.nodes[id] {
                Node::Leaf { value, .. } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    id = if sample[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Gini/variance importance of each feature: total impurity decrease
    /// contributed by splits on that feature, normalised to sum to 1
    /// (all-zero when the tree is a single leaf).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0f64; self.n_features];
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                imp[*feature] += gain.max(0.0);
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// All distinct leaf values, in arena order.
    pub fn leaf_values(&self) -> Vec<&[f64]> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Leaf { value, .. } => Some(value.as_slice()),
                _ => None,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Sufficient statistics of a sample set: per-output sum and square-sum.
#[derive(Clone)]
struct Stats {
    n: usize,
    sum: Vec<f64>,
    sumsq: Vec<f64>,
}

impl Stats {
    fn new(n_outputs: usize) -> Self {
        Stats {
            n: 0,
            sum: vec![0.0; n_outputs],
            sumsq: vec![0.0; n_outputs],
        }
    }
    fn add(&mut self, y: &[f64]) {
        self.n += 1;
        for ((s, q), &v) in self.sum.iter_mut().zip(&mut self.sumsq).zip(y) {
            *s += v;
            *q += v * v;
        }
    }
    fn remove(&mut self, y: &[f64]) {
        self.n -= 1;
        for ((s, q), &v) in self.sum.iter_mut().zip(&mut self.sumsq).zip(y) {
            *s -= v;
            *q -= v * v;
        }
    }
    /// Node impurity times n (so it is additive across children).
    fn impurity_n(&self, criterion: Criterion) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        match criterion {
            // Σ_k (Σy² - (Σy)²/n) — total SSE across outputs.
            Criterion::Mse => self
                .sum
                .iter()
                .zip(&self.sumsq)
                .map(|(&s, &q)| (q - s * s / n).max(0.0))
                .sum(),
            // Gini·n = n - Σ_k count_k²/n  (targets are one-hot).
            Criterion::Gini => (n - self.sum.iter().map(|&c| c * c).sum::<f64>() / n).max(0.0),
        }
    }
    fn mean(&self) -> Vec<f64> {
        let n = (self.n.max(1)) as f64;
        self.sum.iter().map(|&s| s / n).collect()
    }
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
    left_idx: Vec<usize>,
    right_idx: Vec<usize>,
}

fn find_best_split(
    x: &Matrix,
    y: &Matrix,
    idx: &[usize],
    params: &TreeParams,
    criterion: Criterion,
    node_seed: u64,
) -> Option<BestSplit> {
    let n_features = x.cols();
    let n_outputs = y.cols();
    if idx.len() < params.min_samples_split || idx.len() < 2 * params.min_samples_leaf {
        return None;
    }

    let mut parent = Stats::new(n_outputs);
    for &i in idx {
        parent.add(y.row(i));
    }
    let parent_imp = parent.impurity_n(criterion);
    if parent_imp <= 1e-12 {
        return None; // Pure node.
    }

    // Feature subset (random forests); full set otherwise.
    let features: Vec<usize> = match params.max_features {
        Some(m) if m < n_features => {
            let mut order: Vec<usize> = (0..n_features).collect();
            // Deterministic Fisher-Yates driven by a splitmix-style hash so
            // each node sees a different subset without carrying an RNG.
            let mut state = params.seed ^ node_seed ^ 0x9e37_79b9_7f4a_7c15;
            for i in (1..order.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            order.truncate(m.max(1));
            order
        }
        _ => (0..n_features).collect(),
    };

    let mut best: Option<BestSplit> = None;
    let mut sorted = idx.to_vec();

    for &f in &features {
        sorted.sort_by(|&a, &b| x[(a, f)].total_cmp(&x[(b, f)]));
        let mut left = Stats::new(n_outputs);
        let mut right = parent.clone();

        for pos in 0..sorted.len() - 1 {
            let i = sorted[pos];
            left.add(y.row(i));
            right.remove(y.row(i));

            let v_here = x[(i, f)];
            let v_next = x[(sorted[pos + 1], f)];
            // `total_cmp` sorts NaNs to the tail, so a NaN `v_next` must be
            // skipped explicitly: a NaN midpoint threshold would route
            // *every* row to the same side — no-progress recursion, an
            // infinite loop.
            if v_next.is_nan() || v_next <= v_here + 1e-12 {
                continue; // Can't split between equal (or NaN) values.
            }
            if left.n < params.min_samples_leaf || right.n < params.min_samples_leaf {
                continue;
            }
            let gain = parent_imp - left.impurity_n(criterion) - right.impurity_n(criterion);
            // Ties at zero gain are still taken (as in sklearn's splitter):
            // an impure node may need a gain-free split before a useful one
            // becomes visible (the XOR pattern).
            if gain > best.as_ref().map_or(-1e-9, |b| b.gain) {
                let threshold = 0.5 * (v_here + v_next);
                best = Some(BestSplit {
                    feature: f,
                    threshold,
                    gain,
                    left_idx: Vec::new(),
                    right_idx: Vec::new(),
                });
            }
        }
    }

    best.and_then(|mut b| {
        for &i in idx {
            if x[(i, b.feature)] <= b.threshold {
                b.left_idx.push(i);
            } else {
                b.right_idx.push(i);
            }
        }
        // A split that moves nothing cannot make progress; growing on it
        // would recurse forever on the same index set.
        if b.left_idx.is_empty() || b.right_idx.is_empty() {
            return None;
        }
        Some(b)
    })
}

fn leaf_node(y: &Matrix, idx: &[usize], n_outputs: usize) -> Node {
    let mut stats = Stats::new(n_outputs);
    for &i in idx {
        stats.add(y.row(i));
    }
    Node::Leaf {
        value: stats.mean(),
        n_samples: idx.len(),
    }
}

/// Grow a tree. Best-first when `max_leaf_nodes` is set, depth-first
/// otherwise; both respect `max_depth`.
fn build_tree(x: &Matrix, y: &Matrix, params: &TreeParams, criterion: Criterion) -> FittedTree {
    let n_outputs = y.cols();
    let all: Vec<usize> = (0..x.rows()).collect();
    let mut nodes: Vec<Node> = Vec::new();

    if let Some(max_leaves) = params.max_leaf_nodes {
        // Best-first: a frontier of expandable leaves ordered by gain.
        struct Frontier {
            node_id: usize,
            depth: usize,
            split: Option<BestSplit>,
        }
        nodes.push(leaf_node(y, &all, n_outputs));
        let mut frontier = vec![Frontier {
            node_id: 0,
            depth: 0,
            split: find_best_split(x, y, &all, params, criterion, 0),
        }];
        let mut n_leaves = 1usize;

        while n_leaves < max_leaves.max(1) {
            // Pick the frontier entry with the largest gain.
            let pick = frontier
                .iter()
                .enumerate()
                .filter(|(_, f)| f.split.is_some())
                .max_by(|(_, a), (_, b)| {
                    let ga = a.split.as_ref().unwrap().gain;
                    let gb = b.split.as_ref().unwrap().gain;
                    ga.total_cmp(&gb)
                })
                .map(|(i, _)| i);
            let Some(pos) = pick else { break };
            let fr = frontier.swap_remove(pos);
            let split = fr.split.unwrap();
            let depth = fr.depth + 1;
            let over_depth = params.max_depth.is_some_and(|d| depth > d);
            if over_depth {
                continue;
            }

            let left_id = nodes.len();
            nodes.push(leaf_node(y, &split.left_idx, n_outputs));
            let right_id = nodes.len();
            nodes.push(leaf_node(y, &split.right_idx, n_outputs));
            nodes[fr.node_id] = Node::Split {
                feature: split.feature,
                threshold: split.threshold,
                left: left_id,
                right: right_id,
                gain: split.gain,
            };
            n_leaves += 1; // One leaf became a split + two leaves.

            for (child_id, child_idx) in [(left_id, split.left_idx), (right_id, split.right_idx)] {
                let split = find_best_split(x, y, &child_idx, params, criterion, child_id as u64);
                frontier.push(Frontier {
                    node_id: child_id,
                    depth,
                    split,
                });
            }
        }
    } else {
        // Depth-first recursion via an explicit stack.
        struct Work {
            idx: Vec<usize>,
            depth: usize,
            /// Where to write this node's id in the parent.
            slot: Option<(usize, bool)>,
        }
        let mut stack = vec![Work {
            idx: all,
            depth: 0,
            slot: None,
        }];
        while let Some(w) = stack.pop() {
            let id = nodes.len();
            if let Some((parent, is_left)) = w.slot {
                if let Node::Split { left, right, .. } = &mut nodes[parent] {
                    if is_left {
                        *left = id;
                    } else {
                        *right = id;
                    }
                }
            }
            let over_depth = params.max_depth.is_some_and(|d| w.depth >= d);
            let split = if over_depth {
                None
            } else {
                find_best_split(x, y, &w.idx, params, criterion, id as u64)
            };
            match split {
                Some(s) => {
                    nodes.push(Node::Split {
                        feature: s.feature,
                        threshold: s.threshold,
                        left: usize::MAX,
                        right: usize::MAX,
                        gain: s.gain,
                    });
                    // Push right first so left is laid out immediately after
                    // its parent (cache-friendly and deterministic).
                    stack.push(Work {
                        idx: s.right_idx,
                        depth: w.depth + 1,
                        slot: Some((id, false)),
                    });
                    stack.push(Work {
                        idx: s.left_idx,
                        depth: w.depth + 1,
                        slot: Some((id, true)),
                    });
                }
                None => nodes.push(leaf_node(y, &w.idx, n_outputs)),
            }
        }
    }

    FittedTree {
        nodes,
        n_features: x.cols(),
        n_outputs,
    }
}

// ---------------------------------------------------------------------------
// Public estimators
// ---------------------------------------------------------------------------

/// Multi-output decision-tree regressor.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    /// Growth hyper-parameters.
    pub params: TreeParams,
    tree: Option<FittedTree>,
}

impl DecisionTreeRegressor {
    /// New regressor with default parameters.
    pub fn new(params: TreeParams) -> Self {
        DecisionTreeRegressor { params, tree: None }
    }

    /// Fit on features `x` and (multi-output) targets `y`.
    pub fn fit(&mut self, x: &Matrix, y: &Matrix) -> Result<&mut Self> {
        check_xy(x, y)?;
        self.tree = Some(build_tree(x, y, &self.params, Criterion::Mse));
        Ok(self)
    }

    /// Predict target vectors for each row of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Matrix> {
        let tree = self.tree.as_ref().ok_or(MlError::NotFitted)?;
        check_features(x, tree)?;
        let mut out = Matrix::zeros(x.rows(), tree.n_outputs);
        for (i, row) in x.rows_iter().enumerate() {
            out.row_mut(i).copy_from_slice(tree.decide(row));
        }
        Ok(out)
    }

    /// The fitted tree.
    pub fn tree(&self) -> Result<&FittedTree> {
        self.tree.as_ref().ok_or(MlError::NotFitted)
    }
}

/// Decision-tree classifier (Gini).
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    /// Growth hyper-parameters.
    pub params: TreeParams,
    tree: Option<FittedTree>,
    classes: Vec<usize>,
}

impl DecisionTreeClassifier {
    /// New classifier with the given parameters.
    pub fn new(params: TreeParams) -> Self {
        DecisionTreeClassifier {
            params,
            tree: None,
            classes: Vec::new(),
        }
    }

    /// Fit on features `x` and class labels `y`.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<&mut Self> {
        if x.rows() != y.len() || x.rows() == 0 {
            return Err(MlError::BadShape(
                "x rows must equal y length (nonzero)".into(),
            ));
        }
        let (onehot, classes) = one_hot(y);
        self.classes = classes;
        self.tree = Some(build_tree(x, &onehot, &self.params, Criterion::Gini));
        Ok(self)
    }

    /// Predict a class label for each row of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        let tree = self.tree.as_ref().ok_or(MlError::NotFitted)?;
        check_features(x, tree)?;
        Ok(x.rows_iter()
            .map(|row| self.classes[argmax(tree.decide(row))])
            .collect())
    }

    /// Class-probability estimates (leaf class frequencies).
    pub fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let tree = self.tree.as_ref().ok_or(MlError::NotFitted)?;
        check_features(x, tree)?;
        let mut out = Matrix::zeros(x.rows(), self.classes.len());
        for (i, row) in x.rows_iter().enumerate() {
            out.row_mut(i).copy_from_slice(tree.decide(row));
        }
        Ok(out)
    }

    /// Class labels in the order used by [`predict_proba`].
    ///
    /// [`predict_proba`]: DecisionTreeClassifier::predict_proba
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// The fitted tree.
    pub fn tree(&self) -> Result<&FittedTree> {
        self.tree.as_ref().ok_or(MlError::NotFitted)
    }
}

fn check_xy(x: &Matrix, y: &Matrix) -> Result<()> {
    if x.rows() != y.rows() || x.rows() == 0 {
        return Err(MlError::BadShape(
            "x and y must have the same nonzero row count".into(),
        ));
    }
    Ok(())
}

fn check_features(x: &Matrix, tree: &FittedTree) -> Result<()> {
    if x.cols() != tree.n_features {
        return Err(MlError::BadShape("feature count differs from fit".into()));
    }
    Ok(())
}

/// One-hot encode labels; returns the encoding and the sorted class list.
fn one_hot(y: &[usize]) -> (Matrix, Vec<usize>) {
    let mut classes: Vec<usize> = y.to_vec();
    classes.sort_unstable();
    classes.dedup();
    let mut m = Matrix::zeros(y.len(), classes.len());
    for (i, &label) in y.iter().enumerate() {
        let c = classes.binary_search(&label).unwrap();
        m[(i, c)] = 1.0;
    }
    (m, classes)
}

/// Index of the maximum element (first on ties).
pub(crate) fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<usize>) {
        // XOR with 4 clusters of points — not linearly separable, tree food.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (cx, cy, l) in [
            (0.0, 0.0, 0),
            (10.0, 10.0, 0),
            (0.0, 10.0, 1),
            (10.0, 0.0, 1),
        ] {
            for i in 0..8 {
                rows.push(vec![cx + (i % 3) as f64 * 0.1, cy + (i % 2) as f64 * 0.1]);
                labels.push(l);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn classifier_learns_xor() {
        let (x, y) = xor_data();
        let mut clf = DecisionTreeClassifier::new(TreeParams::default());
        clf.fit(&x, &y).unwrap();
        assert_eq!(clf.predict(&x).unwrap(), y);
    }

    #[test]
    fn classifier_respects_max_depth() {
        let (x, y) = xor_data();
        let mut clf = DecisionTreeClassifier::new(TreeParams {
            max_depth: Some(1),
            ..TreeParams::default()
        });
        clf.fit(&x, &y).unwrap();
        assert!(clf.tree().unwrap().depth() <= 1);
        // Depth-1 tree cannot solve XOR.
        let pred = clf.predict(&x).unwrap();
        assert_ne!(pred, y);
    }

    #[test]
    fn nan_poisoned_features_do_not_panic_tree_growth() {
        // NaN feature values used to panic the per-feature sort comparator
        // (and, under best-first growth, the frontier gain comparator).
        // Fitting must complete and predictions must stay valid classes.
        let (mut x_rows, mut y) = {
            let (x, y) = xor_data();
            (x.rows_iter().map(|r| r.to_vec()).collect::<Vec<_>>(), y)
        };
        x_rows.push(vec![f64::NAN, 0.05]);
        y.push(0);
        x_rows.push(vec![f64::NAN, f64::NAN]);
        y.push(1);
        let x = Matrix::from_rows(&x_rows).unwrap();

        let mut clf = DecisionTreeClassifier::new(TreeParams::default());
        clf.fit(&x, &y).unwrap();
        let pred = clf.predict(&x).unwrap();
        assert_eq!(pred.len(), y.len());
        assert!(pred.iter().all(|&p| p == 0 || p == 1));

        // Best-first growth exercises the frontier comparator too.
        let mut best_first = DecisionTreeClassifier::new(TreeParams {
            max_leaf_nodes: Some(4),
            ..TreeParams::default()
        });
        best_first.fit(&x, &y).unwrap();
        assert!(best_first.tree().unwrap().n_leaves() <= 4);
    }

    #[test]
    fn regressor_fits_step_function() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let targets: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                if i < 10 {
                    vec![1.0, 0.0]
                } else {
                    vec![5.0, 2.0]
                }
            })
            .collect();
        let y = Matrix::from_rows(&targets).unwrap();
        let mut reg = DecisionTreeRegressor::new(TreeParams::default());
        reg.fit(&x, &y).unwrap();
        let pred = reg.predict(&x).unwrap();
        for i in 0..20 {
            let expect = if i < 10 { [1.0, 0.0] } else { [5.0, 2.0] };
            assert!((pred[(i, 0)] - expect[0]).abs() < 1e-12);
            assert!((pred[(i, 1)] - expect[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn max_leaf_nodes_bounds_leaves_and_distinct_predictions() {
        // A target with 8 distinct plateaus; cap at 3 leaves.
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let targets: Vec<Vec<f64>> = (0..64).map(|i| vec![(i / 8) as f64 * 10.0]).collect();
        let y = Matrix::from_rows(&targets).unwrap();
        let mut reg = DecisionTreeRegressor::new(TreeParams {
            max_leaf_nodes: Some(3),
            ..TreeParams::default()
        });
        reg.fit(&x, &y).unwrap();
        assert_eq!(reg.tree().unwrap().n_leaves(), 3);
        let pred = reg.predict(&x).unwrap();
        let mut distinct: Vec<i64> = pred.as_slice().iter().map(|v| (v * 512.0) as i64).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 3);
    }

    #[test]
    fn best_first_growth_picks_highest_gain_first() {
        // Feature 0 splits targets 0 vs 100 (huge gain); feature 1 splits
        // 0 vs 1 (tiny gain). With 2 leaves only feature 0 may be used.
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for i in 0..16 {
            let big = (i % 2) as f64;
            let small = ((i / 2) % 2) as f64;
            rows.push(vec![big, small]);
            targets.push(vec![big * 100.0 + small]);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let y = Matrix::from_rows(&targets).unwrap();
        let mut reg = DecisionTreeRegressor::new(TreeParams {
            max_leaf_nodes: Some(2),
            ..TreeParams::default()
        });
        reg.fit(&x, &y).unwrap();
        match &reg.tree().unwrap().nodes()[0] {
            Node::Split { feature, .. } => assert_eq!(*feature, 0),
            _ => panic!("root should be a split"),
        }
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = xor_data();
        let mut clf = DecisionTreeClassifier::new(TreeParams {
            min_samples_leaf: 5,
            ..TreeParams::default()
        });
        clf.fit(&x, &y).unwrap();
        for node in clf.tree().unwrap().nodes() {
            if let Node::Leaf { n_samples, .. } = node {
                assert!(*n_samples >= 5);
            }
        }
    }

    #[test]
    fn leaf_values_count_matches_n_leaves() {
        let (x, y) = xor_data();
        let mut clf = DecisionTreeClassifier::new(TreeParams::default());
        clf.fit(&x, &y).unwrap();
        let t = clf.tree().unwrap();
        assert_eq!(t.leaf_values().len(), t.n_leaves());
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let (x, y) = xor_data();
        let mut clf = DecisionTreeClassifier::new(TreeParams::default());
        clf.fit(&x, &y).unwrap();
        let p = clf.predict_proba(&x).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn errors_on_unfitted_or_mismatched() {
        let clf = DecisionTreeClassifier::new(TreeParams::default());
        assert!(clf.predict(&Matrix::zeros(1, 2)).is_err());
        let (x, y) = xor_data();
        let mut clf = DecisionTreeClassifier::new(TreeParams::default());
        clf.fit(&x, &y).unwrap();
        assert!(clf.predict(&Matrix::zeros(1, 5)).is_err());
        let mut reg = DecisionTreeRegressor::new(TreeParams::default());
        assert!(reg.fit(&Matrix::zeros(3, 2), &Matrix::zeros(4, 1)).is_err());
    }

    #[test]
    fn feature_importances_identify_the_informative_feature() {
        // Labels depend only on feature 1; feature 0 is noise.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            rows.push(vec![(i % 7) as f64, (i / 20) as f64 * 10.0]);
            labels.push(i / 20);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut clf = DecisionTreeClassifier::new(TreeParams::default());
        clf.fit(&x, &labels).unwrap();
        let imp = clf.tree().unwrap().feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            imp[1] > 0.95,
            "informative feature should dominate: {imp:?}"
        );
    }

    #[test]
    fn single_leaf_tree_has_zero_importances() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let mut clf = DecisionTreeClassifier::new(TreeParams::default());
        clf.fit(&x, &[3, 3]).unwrap();
        assert_eq!(clf.tree().unwrap().feature_importances(), vec![0.0]);
    }

    #[test]
    fn classifier_preserves_original_label_values() {
        // Labels are arbitrary usizes (e.g. config indices), not 0..k.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<usize> = (0..10).map(|i| if i < 5 { 137 } else { 42 }).collect();
        let mut clf = DecisionTreeClassifier::new(TreeParams::default());
        clf.fit(&x, &y).unwrap();
        let pred = clf.predict(&x).unwrap();
        assert_eq!(pred, y);
        assert_eq!(clf.classes(), &[42, 137]);
    }
}
