//! Feature scaling and transforms applied before the estimators.

use crate::matrix::Matrix;
use crate::{MlError, Result};

/// Standardise features to zero mean and unit variance.
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Create an unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learn per-column mean and standard deviation.
    pub fn fit(&mut self, x: &Matrix) -> Result<&mut Self> {
        if x.rows() == 0 {
            return Err(MlError::BadShape(
                "cannot fit scaler on empty matrix".into(),
            ));
        }
        self.mean = x.col_means();
        let n = x.rows() as f64;
        let mut var = vec![0.0; x.cols()];
        for row in x.rows_iter() {
            for ((v, m), &xv) in var.iter_mut().zip(&self.mean).zip(row) {
                let d = xv - m;
                *v += d * d;
            }
        }
        self.std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0 // Constant column: leave it centred but unscaled.
                }
            })
            .collect();
        Ok(self)
    }

    /// Apply the learned scaling.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if self.mean.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.mean.len() {
            return Err(MlError::BadShape("transform feature count mismatch".into()));
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            for ((v, m), s) in out.row_mut(r).iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - m) / s;
            }
        }
        Ok(out)
    }

    /// Fit and transform in one call.
    pub fn fit_transform(&mut self, x: &Matrix) -> Result<Matrix> {
        self.fit(x)?;
        self.transform(x)
    }

    /// The fitted per-column means (empty before fitting).
    pub fn means(&self) -> &[f64] {
        &self.mean
    }

    /// The fitted per-column standard deviations (empty before fitting).
    pub fn stds(&self) -> &[f64] {
        &self.std
    }

    /// Undo the scaling.
    pub fn inverse_transform(&self, x: &Matrix) -> Result<Matrix> {
        if self.mean.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.mean.len() {
            return Err(MlError::BadShape("inverse feature count mismatch".into()));
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            for ((v, m), s) in out.row_mut(r).iter_mut().zip(&self.mean).zip(&self.std) {
                *v = *v * s + m;
            }
        }
        Ok(out)
    }
}

/// Scale features into `[0, 1]` per column.
#[derive(Debug, Clone, Default)]
pub struct MinMaxScaler {
    min: Vec<f64>,
    range: Vec<f64>,
}

impl MinMaxScaler {
    /// Create an unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learn per-column min and range.
    pub fn fit(&mut self, x: &Matrix) -> Result<&mut Self> {
        if x.rows() == 0 {
            return Err(MlError::BadShape(
                "cannot fit scaler on empty matrix".into(),
            ));
        }
        let mut min = vec![f64::INFINITY; x.cols()];
        let mut max = vec![f64::NEG_INFINITY; x.cols()];
        for row in x.rows_iter() {
            for ((mn, mx), &v) in min.iter_mut().zip(&mut max).zip(row) {
                *mn = mn.min(v);
                *mx = mx.max(v);
            }
        }
        self.range = min
            .iter()
            .zip(&max)
            .map(|(&a, &b)| if b > a { b - a } else { 1.0 })
            .collect();
        self.min = min;
        Ok(self)
    }

    /// Apply the learned scaling.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if self.min.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.min.len() {
            return Err(MlError::BadShape("transform feature count mismatch".into()));
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            for ((v, mn), rg) in out.row_mut(r).iter_mut().zip(&self.min).zip(&self.range) {
                *v = (*v - mn) / rg;
            }
        }
        Ok(out)
    }

    /// Fit and transform in one call.
    pub fn fit_transform(&mut self, x: &Matrix) -> Result<Matrix> {
        self.fit(x)?;
        self.transform(x)
    }
}

/// Element-wise `log2(1 + x)`, the standard transform for size-like
/// features such as matrix dimensions.
pub fn log2p1(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        for v in out.row_mut(r) {
            *v = (1.0 + *v).log2();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 200.0]]).unwrap();
        let mut s = StandardScaler::new();
        let z = s.fit_transform(&x).unwrap();
        let means = z.col_means();
        assert!(means.iter().all(|m| m.abs() < 1e-12));
        for c in 0..2 {
            let var: f64 = z.col(c).iter().map(|v| v * v).sum::<f64>() / 3.0;
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standard_scaler_handles_constant_column() {
        let x = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        let mut s = StandardScaler::new();
        let z = s.fit_transform(&x).unwrap();
        assert_eq!(z[(0, 0)], 0.0);
        assert_eq!(z[(1, 0)], 0.0);
    }

    #[test]
    fn standard_scaler_roundtrip() {
        let x = Matrix::from_rows(&[vec![1.0, -4.0], vec![9.0, 2.0], vec![-3.0, 8.0]]).unwrap();
        let mut s = StandardScaler::new();
        let z = s.fit_transform(&x).unwrap();
        let back = s.inverse_transform(&z).unwrap();
        for i in 0..3 {
            for j in 0..2 {
                assert!((back[(i, j)] - x[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn minmax_bounds() {
        let x = Matrix::from_rows(&[vec![2.0, -5.0], vec![4.0, 5.0], vec![3.0, 0.0]]).unwrap();
        let mut s = MinMaxScaler::new();
        let z = s.fit_transform(&x).unwrap();
        for v in z.as_slice() {
            assert!(*v >= 0.0 && *v <= 1.0);
        }
        assert_eq!(z[(0, 0)], 0.0);
        assert_eq!(z[(1, 0)], 1.0);
    }

    #[test]
    fn log_transform_values() {
        let x = Matrix::from_rows(&[vec![0.0, 1.0, 3.0]]).unwrap();
        let z = log2p1(&x);
        assert_eq!(z.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn unfitted_errors() {
        let s = StandardScaler::new();
        assert!(s.transform(&Matrix::zeros(1, 1)).is_err());
        let m = MinMaxScaler::new();
        assert!(m.transform(&Matrix::zeros(1, 1)).is_err());
    }
}
