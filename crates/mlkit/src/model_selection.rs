//! Train/test splitting and k-fold iteration, seeded for reproducibility.

use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

/// A shuffled train/test index split.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Indices of the training rows.
    pub train: Vec<usize>,
    /// Indices of the test rows.
    pub test: Vec<usize>,
}

/// Split `n` samples into train/test with the given test fraction,
/// shuffling with `seed`. The paper's split (170 → 136/34) corresponds to
/// `test_fraction = 0.2`.
///
/// Guarantees at least one sample on each side when `n >= 2`. With
/// fewer than two samples no meaningful split exists, so everything
/// goes to `train` and `test` is empty (rather than, say, rounding a
/// large `test_fraction` up and handing the only sample to `test`,
/// which would leave nothing to fit on).
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> TrainTestSplit {
    let mut idx: Vec<usize> = (0..n).collect();
    if n < 2 {
        return TrainTestSplit {
            train: idx,
            test: Vec::new(),
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_test = ((n as f64 * test_fraction.clamp(0.0, 1.0)).round() as usize).clamp(1, n - 1);
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    TrainTestSplit { train, test }
}

/// Iterate `k` contiguous folds over a seeded shuffle of `0..n`.
/// Each item is `(train_indices, validation_indices)`.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k_fold needs k >= 2");
    assert!(n >= k, "k_fold needs at least k samples");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);

    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        let val: Vec<usize> = idx[start..start + len].to_vec();
        let train: Vec<usize> = idx[..start]
            .iter()
            .chain(&idx[start + len..])
            .copied()
            .collect();
        folds.push((train, val));
        start += len;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_covers_all_indices_once() {
        let s = train_test_split(170, 0.2, 42);
        assert_eq!(s.train.len() + s.test.len(), 170);
        let all: HashSet<usize> = s.train.iter().chain(&s.test).copied().collect();
        assert_eq!(all.len(), 170);
    }

    #[test]
    fn paper_split_sizes() {
        let s = train_test_split(170, 0.2, 0);
        assert_eq!(s.test.len(), 34);
        assert_eq!(s.train.len(), 136);
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let a = train_test_split(50, 0.3, 7);
        let b = train_test_split(50, 0.3, 7);
        let c = train_test_split(50, 0.3, 8);
        assert_eq!(a.test, b.test);
        assert_ne!(a.test, c.test);
    }

    #[test]
    fn split_never_empties_either_side() {
        for n in 2..10 {
            for frac in [0.0, 0.01, 0.5, 0.99, 1.0] {
                let s = train_test_split(n, frac, 1);
                assert!(!s.train.is_empty(), "empty train at n={n} frac={frac}");
                assert!(!s.test.is_empty(), "empty test at n={n} frac={frac}");
            }
        }
    }

    #[test]
    fn degenerate_sizes_are_all_train() {
        for n in [0usize, 1] {
            for frac in [0.0, 0.5, 1.0] {
                let s = train_test_split(n, frac, 9);
                assert_eq!(s.train, (0..n).collect::<Vec<_>>(), "n={n} frac={frac}");
                assert!(s.test.is_empty(), "n={n} frac={frac}");
            }
        }
    }

    #[test]
    fn k_fold_partitions() {
        let folds = k_fold(23, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = HashSet::new();
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 23);
            for v in val {
                assert!(seen.insert(*v), "index {v} in two validation folds");
            }
        }
        assert_eq!(seen.len(), 23);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_fold_rejects_k_one() {
        k_fold(10, 1, 0);
    }
}
