//! Scoring utilities used across the study.

/// Fraction of positions where `pred == truth`.
///
/// Returns 0 for empty inputs (and panics in debug builds on length
/// mismatch, which is always a caller bug).
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    debug_assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / pred.len() as f64
}

/// Geometric mean of strictly-positive values — the paper's headline
/// metric for relative performance scores.
///
/// ```
/// use autokernel_mlkit::metrics::geometric_mean;
/// assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
///
/// Non-positive entries are clamped to a small epsilon so a single zero
/// (a kernel that failed to run) does not collapse the whole score to 0;
/// this mirrors how benchmark aggregation is done in practice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-9).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Index of the maximum value, first index on ties.
pub fn argmax(values: &[f64]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    Some(best)
}

/// Mean silhouette coefficient of a clustering: for each point,
/// `(b - a) / max(a, b)` with `a` the mean intra-cluster distance and
/// `b` the smallest mean distance to another cluster. Returns 0 for
/// degenerate inputs (fewer than 2 clusters, or singleton-only data).
#[allow(clippy::needless_range_loop)] // parallel indexing of x and labels
pub fn silhouette_score(x: &crate::matrix::Matrix, labels: &[usize]) -> f64 {
    debug_assert_eq!(x.rows(), labels.len());
    let mut clusters: Vec<usize> = labels.to_vec();
    clusters.sort_unstable();
    clusters.dedup();
    if clusters.len() < 2 {
        return 0.0;
    }
    let n = x.rows();
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for i in 0..n {
        let own = labels[i];
        let mut mean_dist = vec![(0.0f64, 0usize); clusters.len()];
        for j in 0..n {
            if i == j {
                continue;
            }
            let c = clusters.binary_search(&labels[j]).expect("known label");
            mean_dist[c].0 += crate::matrix::Matrix::dist(x.row(i), x.row(j));
            mean_dist[c].1 += 1;
        }
        let own_idx = clusters.binary_search(&own).expect("known label");
        let (a_sum, a_n) = mean_dist[own_idx];
        if a_n == 0 {
            continue; // Singleton cluster: silhouette undefined for i.
        }
        let a = a_sum / a_n as f64;
        let b = mean_dist
            .iter()
            .enumerate()
            .filter(|&(c, &(_, cnt))| c != own_idx && cnt > 0)
            .map(|(_, &(s, cnt))| s / cnt as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Confusion matrix over the provided class list; `counts[t][p]` counts
/// samples of true class `classes[t]` predicted as `classes[p]`.
pub fn confusion_matrix(pred: &[usize], truth: &[usize], classes: &[usize]) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; classes.len()]; classes.len()];
    for (&p, &t) in pred.iter().zip(truth) {
        let (Ok(pi) | Err(pi)) = classes.binary_search(&p);
        let (Ok(ti) | Err(ti)) = classes.binary_search(&t);
        if pi < classes.len() && ti < classes.len() && classes[pi] == p && classes[ti] == t {
            m[ti][pi] += 1;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn geometric_mean_known_values() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_dominated_by_low_outliers() {
        let with_bad = geometric_mean(&[1.0, 1.0, 1.0, 0.01]);
        let without = geometric_mean(&[1.0, 1.0, 1.0, 1.0]);
        assert!(with_bad < 0.4 * without);
    }

    #[test]
    fn geometric_mean_survives_zero() {
        let g = geometric_mean(&[0.0, 1.0]);
        assert!(g > 0.0 && g < 1.0);
    }

    #[test]
    fn argmax_and_mean() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn confusion_matrix_diagonal_on_perfect() {
        let classes = [1usize, 2, 5];
        let m = confusion_matrix(&[1, 2, 5, 5], &[1, 2, 5, 5], &classes);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][2], 2);
        assert_eq!(m[0][1] + m[1][0] + m[2][0], 0);
    }

    #[test]
    fn silhouette_high_for_separated_blobs_low_for_mixed() {
        use crate::matrix::Matrix;
        let mut rows = Vec::new();
        let mut good = Vec::new();
        for i in 0..6 {
            rows.push(vec![i as f64 * 0.1, 0.0]);
            good.push(0usize);
        }
        for i in 0..6 {
            rows.push(vec![100.0 + i as f64 * 0.1, 0.0]);
            good.push(1usize);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let s_good = silhouette_score(&x, &good);
        assert!(
            s_good > 0.95,
            "separated blobs should score near 1, got {s_good}"
        );
        // Alternating labels mix the blobs: poor clustering.
        let bad: Vec<usize> = (0..12).map(|i| i % 2).collect();
        let s_bad = silhouette_score(&x, &bad);
        assert!(
            s_bad < s_good - 0.5,
            "mixed labels should score low, got {s_bad}"
        );
    }

    #[test]
    fn silhouette_degenerate_inputs() {
        use crate::matrix::Matrix;
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert_eq!(silhouette_score(&x, &[0, 0]), 0.0); // one cluster
                                                        // Two singleton clusters: every point is a singleton => 0.
        assert_eq!(silhouette_score(&x, &[0, 1]), 0.0);
    }

    #[test]
    fn confusion_matrix_off_diagonal() {
        let classes = [0usize, 1];
        let m = confusion_matrix(&[1, 0], &[0, 0], &classes);
        assert_eq!(m[0][1], 1); // true 0 predicted 1
        assert_eq!(m[0][0], 1);
    }
}
