//! Dense row-major matrix with the linear algebra the estimators need.

use crate::{MlError, Result};

/// A dense, row-major matrix of `f64`.
///
/// This is deliberately small: the estimators in this crate only need
/// construction, element access, row/column views, transpose, matrix
/// product, centering and Gram/covariance products.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of `rows × cols` filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MlError::BadShape(format!(
                "buffer of {} elements cannot be {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Create a matrix from a slice of rows.
    ///
    /// Returns an error if rows have inconsistent lengths or no rows given.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(MlError::BadShape("no rows".into()));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(MlError::BadShape("ragged rows".into()));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// The identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Flat row-major view of the underlying data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MlError::BadShape(format!(
                "matmul {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `other`
        // and `out`, which matters for the 640-wide performance matrices.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Return a copy with the given per-column offsets subtracted.
    pub fn center_by(&self, means: &[f64]) -> Result<Matrix> {
        if means.len() != self.cols {
            return Err(MlError::BadShape("center_by length mismatch".into()));
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, m) in out.row_mut(r).iter_mut().zip(means) {
                *v -= m;
            }
        }
        Ok(out)
    }

    /// Gram matrix `self * selfᵀ` (`rows × rows`), used by dual PCA.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.rows);
        for i in 0..self.rows {
            let ri = self.row(i);
            for j in i..self.rows {
                let dot: f64 = ri.iter().zip(self.row(j)).map(|(a, b)| a * b).sum();
                out[(i, j)] = dot;
                out[(j, i)] = dot;
            }
        }
        out
    }

    /// Covariance matrix `selfᵀ * self / (rows - 1)` of a centered matrix.
    pub fn covariance_of_centered(&self) -> Matrix {
        let denom = (self.rows.saturating_sub(1)).max(1) as f64;
        let mut out = Matrix::zeros(self.cols, self.cols);
        for row in self.rows_iter() {
            for i in 0..self.cols {
                let vi = row[i];
                if vi == 0.0 {
                    continue;
                }
                let orow = out.row_mut(i);
                for (o, &vj) in orow.iter_mut().zip(row) {
                    *o += vi * vj;
                }
            }
        }
        for v in &mut out.data {
            *v /= denom;
        }
        out
    }

    /// Squared Euclidean distance between two equal-length slices.
    #[inline]
    pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Euclidean distance between two equal-length slices.
    #[inline]
    pub fn dist(a: &[f64], b: &[f64]) -> f64 {
        Self::sq_dist(a, b).sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a).unwrap(), a);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn col_means_and_center() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 10.0, 3.0, 20.0]).unwrap();
        let means = a.col_means();
        assert_eq!(means, vec![2.0, 15.0]);
        let c = a.center_by(&means).unwrap();
        assert_eq!(c.as_slice(), &[-1.0, -5.0, 1.0, 5.0]);
        assert!(c.col_means().iter().all(|m| m.abs() < 1e-12));
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]).unwrap();
        let g = a.gram();
        let explicit = a.matmul(&a.transpose()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn covariance_of_centered_matches_definition() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 5.0, 5.0, 11.0]).unwrap();
        let c = a.center_by(&a.col_means()).unwrap();
        let cov = c.covariance_of_centered();
        // Explicit: cov = cᵀ c / (n-1)
        let explicit = c.transpose().matmul(&c).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((cov[(i, j)] - explicit[(i, j)] / 2.0).abs() < 1e-12);
            }
        }
        // Covariance is symmetric PSD; diagonal entries are variances >= 0.
        assert!(cov[(0, 0)] >= 0.0 && cov[(1, 1)] >= 0.0);
        assert!((cov[(0, 1)] - cov[(1, 0)]).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        assert_eq!(Matrix::sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(Matrix::dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }
}
