//! # autokernel-mlkit
//!
//! A from-scratch machine-learning toolkit providing every algorithm the
//! kernel-selection study needs, with semantics matching the scikit-learn
//! calls used by the paper's released code:
//!
//! - [`matrix::Matrix`] — dense row-major matrix with the small set of
//!   linear-algebra operations the estimators need.
//! - [`eigen`] — cyclic Jacobi eigendecomposition for symmetric matrices.
//! - [`pca::Pca`] — principal component analysis (dual formulation when
//!   samples ≪ features), explained-variance ratios, transform/inverse.
//! - [`kmeans::KMeans`] — Lloyd's algorithm with k-means++ initialisation.
//! - [`hdbscan::Hdbscan`] — hierarchical density-based clustering: core
//!   distances, mutual-reachability minimum spanning tree, condensed tree
//!   and stability-based cluster extraction.
//! - [`tree`] — CART decision trees: classification (Gini) and
//!   multi-output regression (variance reduction), with both depth-first
//!   growth and sklearn-style best-first growth under `max_leaf_nodes`.
//! - [`forest::RandomForestClassifier`] — bagged trees with feature
//!   subsampling and majority voting.
//! - [`gbrt::GradientBoostingRegressor`] — squared-loss gradient
//!   boosting (the predictive-auto-tuning model of the paper's related
//!   work).
//! - [`svm`] — support vector classification trained with SMO, linear and
//!   RBF kernels, one-vs-one multiclass voting.
//! - [`knn::KNearestNeighbors`] — brute-force k-NN classification.
//! - [`preprocess`] — standard and min-max scalers, log transforms.
//! - [`metrics`] — accuracy, geometric mean, argmax helpers.
//! - [`model_selection`] — seeded train/test splits and k-fold iteration.
//!
//! All estimators are deterministic given an explicit seed, which the
//! reproduction relies on.

#![warn(missing_docs)]

pub mod eigen;
pub mod forest;
pub mod gbrt;
pub mod hdbscan;
pub mod kmeans;
pub mod knn;
pub mod matrix;
pub mod metrics;
pub mod model_selection;
pub mod pca;
pub mod preprocess;
pub mod svm;
pub mod tree;

pub use forest::RandomForestClassifier;
pub use gbrt::GradientBoostingRegressor;
pub use hdbscan::Hdbscan;
pub use kmeans::KMeans;
pub use knn::KNearestNeighbors;
pub use matrix::Matrix;
pub use pca::Pca;
pub use svm::{Svc, SvmKernel};
pub use tree::{DecisionTreeClassifier, DecisionTreeRegressor};

/// Errors produced by mlkit estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Input matrices had incompatible or empty shapes.
    BadShape(String),
    /// An estimator was asked to predict before being fitted.
    NotFitted,
    /// Invalid hyper-parameter value.
    BadParam(String),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::BadShape(s) => write!(f, "bad shape: {s}"),
            MlError::NotFitted => write!(f, "estimator is not fitted"),
            MlError::BadParam(s) => write!(f, "bad parameter: {s}"),
        }
    }
}

impl std::error::Error for MlError {}

/// Convenience result alias for mlkit operations.
pub type Result<T> = std::result::Result<T, MlError>;
