//! Random forest classifier: bagged Gini trees with feature subsampling
//! and majority voting, trained in parallel with rayon.

use crate::matrix::Matrix;
use crate::tree::{DecisionTreeClassifier, TreeParams};
use crate::{MlError, Result};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use rayon::prelude::*;

/// Random forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    n_estimators: usize,
    max_depth: Option<usize>,
    seed: u64,
    trees: Vec<DecisionTreeClassifier>,
    classes: Vec<usize>,
}

impl RandomForestClassifier {
    /// Create a forest of `n_estimators` trees.
    pub fn new(n_estimators: usize, seed: u64) -> Self {
        RandomForestClassifier {
            n_estimators,
            max_depth: None,
            seed,
            trees: Vec::new(),
            classes: Vec::new(),
        }
    }

    /// Limit the depth of each tree.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = Some(max_depth);
        self
    }

    /// Fit on features `x` and labels `y`.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<&mut Self> {
        if self.n_estimators == 0 {
            return Err(MlError::BadParam("n_estimators must be >= 1".into()));
        }
        if x.rows() != y.len() || x.rows() == 0 {
            return Err(MlError::BadShape(
                "x rows must equal y length (nonzero)".into(),
            ));
        }
        let n = x.rows();
        let max_features = (x.cols() as f64).sqrt().ceil() as usize;

        let mut classes: Vec<usize> = y.to_vec();
        classes.sort_unstable();
        classes.dedup();
        self.classes = classes;

        let trees: Vec<Result<DecisionTreeClassifier>> = (0..self.n_estimators)
            .into_par_iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(t as u64 * 7919));
                // Bootstrap sample with replacement.
                let mut brows = Vec::with_capacity(n);
                let mut blabels = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = rng.random_range(0..n);
                    let label = *y
                        .get(i)
                        .ok_or_else(|| MlError::BadShape("bootstrap index out of range".into()))?;
                    brows.push(x.row(i).to_vec());
                    blabels.push(label);
                }
                let bx = Matrix::from_rows(&brows)?;
                let mut clf = DecisionTreeClassifier::new(TreeParams {
                    max_depth: self.max_depth,
                    max_features: Some(max_features),
                    seed: self.seed.wrapping_add(t as u64),
                    ..TreeParams::default()
                });
                clf.fit(&bx, &blabels)?;
                Ok(clf)
            })
            .collect();

        self.trees = trees.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(self)
    }

    /// Predict by majority vote over the trees.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let votes: Vec<Vec<usize>> = self
            .trees
            .iter()
            .map(|t| t.predict(x))
            .collect::<Result<Vec<_>>>()?;
        let mut out = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let mut counts = vec![0usize; self.classes.len()];
            for v in &votes {
                let slot = v
                    .get(i)
                    .and_then(|vote| self.classes.binary_search(vote).ok())
                    .and_then(|c| counts.get_mut(c));
                if let Some(count) = slot {
                    *count += 1;
                }
            }
            let best = counts
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .and_then(|(c, _)| self.classes.get(c))
                .copied()
                .ok_or(MlError::NotFitted)?;
            out.push(best);
        }
        Ok(out)
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Class labels known to the forest.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bands() -> (Matrix, Vec<usize>) {
        // Three bands by the first feature, second feature is noise-ish.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let f0 = i as f64;
            rows.push(vec![f0, (i % 7) as f64]);
            labels.push(if f0 < 20.0 {
                0
            } else if f0 < 40.0 {
                1
            } else {
                2
            });
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn fits_banded_data() {
        let (x, y) = bands();
        let mut rf = RandomForestClassifier::new(25, 9);
        rf.fit(&x, &y).unwrap();
        let pred = rf.predict(&x).unwrap();
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "train accuracy only {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = bands();
        let mut a = RandomForestClassifier::new(10, 42);
        let mut b = RandomForestClassifier::new(10, 42);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn predictions_are_known_classes() {
        let (x, y) = bands();
        let mut rf = RandomForestClassifier::new(5, 1);
        rf.fit(&x, &y).unwrap();
        for p in rf.predict(&x).unwrap() {
            assert!(rf.classes().contains(&p));
        }
    }

    #[test]
    fn errors_without_fit_or_bad_params() {
        let rf = RandomForestClassifier::new(5, 0);
        assert!(rf.predict(&Matrix::zeros(1, 2)).is_err());
        let (x, y) = bands();
        assert!(RandomForestClassifier::new(0, 0).fit(&x, &y).is_err());
    }
}
