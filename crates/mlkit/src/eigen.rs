//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Jacobi is slow (O(n³) per sweep) but simple, numerically robust and
//! more than fast enough for the matrices this crate sees (≤ 640×640
//! covariance matrices, ≤ 200×200 Gram matrices).

use crate::matrix::Matrix;
use crate::{MlError, Result};

/// Result of a symmetric eigendecomposition.
///
/// Eigenpairs are sorted by descending eigenvalue. Eigenvectors are the
/// *columns* of [`EigenDecomposition::vectors`].
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Matrix whose column `j` is the eigenvector for `values[j]`.
    pub vectors: Matrix,
}

/// Decompose a symmetric matrix with the cyclic Jacobi method.
///
/// `a` must be square and (approximately) symmetric; asymmetry beyond
/// floating-point noise yields an error. Convergence is declared when the
/// off-diagonal Frobenius norm falls below `1e-12` times the initial norm,
/// or after 100 sweeps (far more than Jacobi ever needs in practice).
pub fn eigen_symmetric(a: &Matrix) -> Result<EigenDecomposition> {
    let n = a.rows();
    if n != a.cols() {
        return Err(MlError::BadShape(
            "eigen_symmetric needs a square matrix".into(),
        ));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let denom = a[(i, j)].abs().max(a[(j, i)].abs()).max(1.0);
            if (a[(i, j)] - a[(j, i)]).abs() > 1e-8 * denom {
                return Err(MlError::BadShape("matrix is not symmetric".into()));
            }
        }
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    let off = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += m[(i, j)] * m[(i, j)];
            }
        }
        s
    };

    let initial = off(&m).max(f64::MIN_POSITIVE);
    let tol = initial * 1e-24; // squared norms: 1e-12 on the norm itself.

    for _sweep in 0..100 {
        if off(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation to rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate the eigenvector rotation.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    // Descending by eigenvalue (note the reversed operands); total_cmp
    // keeps the order total even if a NaN input slips through Jacobi.
    order.sort_by(|&i, &j| m[(j, j)].total_cmp(&m[(i, i)]));

    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }

    Ok(EigenDecomposition { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, d: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, d.to_vec()).unwrap()
    }

    #[test]
    fn rejects_nonsquare_and_asymmetric() {
        assert!(eigen_symmetric(&Matrix::zeros(2, 3)).is_err());
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 1.0]);
        assert!(eigen_symmetric(&a).is_err());
    }

    #[test]
    fn nan_poisoned_matrix_does_not_panic() {
        // A symmetric NaN entry sails through the symmetry check (NaN
        // comparisons are all false), so Jacobi iterates on NaN and the
        // final descending sort sees NaN eigenvalues. That sort used to
        // panic; it must now return a decomposition of the right shape.
        let a = mat(
            3,
            3,
            &[1.0, f64::NAN, 0.0, f64::NAN, 2.0, 0.0, 0.0, 0.0, 3.0],
        );
        let e = eigen_symmetric(&a).unwrap();
        assert_eq!(e.values.len(), 3);
        assert_eq!(e.vectors.rows(), 3);
        assert_eq!(e.vectors.cols(), 3);
    }

    #[test]
    fn descending_order_survives_total_cmp_rewrite() {
        let a = mat(3, 3, &[-5.0, 0.0, 0.0, 0.0, 7.0, 0.0, 0.0, 0.0, 1.0]);
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.values[0] - 7.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        assert!((e.values[2] + 5.0).abs() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = mat(3, 3, &[3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = mat(2, 2, &[2.0, 1.0, 1.0, 2.0]);
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = (e.vectors[(0, 0)], e.vectors[(1, 0)]);
        assert!((v0.0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0.0 - v0.1).abs() < 1e-10);
    }

    #[test]
    fn reconstructs_matrix() {
        // A = V diag(w) Vᵀ for a random-ish symmetric matrix.
        let a = mat(
            4,
            4,
            &[
                4.0, 1.0, -2.0, 0.5, 1.0, 3.0, 0.0, 1.5, -2.0, 0.0, 5.0, -1.0, 0.5, 1.5, -1.0, 2.0,
            ],
        );
        let e = eigen_symmetric(&a).unwrap();
        let mut diag = Matrix::zeros(4, 4);
        for i in 0..4 {
            diag[(i, i)] = e.values[i];
        }
        let recon = e
            .vectors
            .matmul(&diag)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (recon[(i, j)] - a[(i, j)]).abs() < 1e-8,
                    "mismatch at ({i},{j}): {} vs {}",
                    recon[(i, j)],
                    a[(i, j)]
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = mat(3, 3, &[2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0]);
        let e = eigen_symmetric(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = mat(3, 3, &[5.0, 2.0, 1.0, 2.0, 6.0, 3.0, 1.0, 3.0, 7.0]);
        let e = eigen_symmetric(&a).unwrap();
        let trace = 5.0 + 6.0 + 7.0;
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }
}
