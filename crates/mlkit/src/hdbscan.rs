//! HDBSCAN: hierarchical density-based clustering (Campello, Moulavi &
//! Sander 2013), as used by the paper to cluster performance vectors.
//!
//! The implementation follows the reference pipeline:
//!
//! 1. *Core distances* — distance to the `min_samples`-th nearest
//!    neighbour of each point.
//! 2. *Mutual-reachability graph* — edge weight
//!    `max(core(a), core(b), d(a, b))`.
//! 3. *Minimum spanning tree* of that graph (Prim, O(n²): the graph is
//!    complete so adjacency-matrix Prim is optimal here).
//! 4. *Single-linkage hierarchy* from the sorted MST edges (union-find).
//! 5. *Condensed tree* under `min_cluster_size`: splits into two
//!    sufficiently large children create new clusters; smaller spin-offs
//!    are treated as points falling out of the parent.
//! 6. *Stability-based extraction* ("excess of mass"): a cluster is
//!    selected when its own stability exceeds the summed stability of its
//!    descendants.
//!
//! Points not covered by a selected cluster are noise (label `-1`).

use crate::matrix::Matrix;
use crate::{MlError, Result};

/// HDBSCAN estimator.
///
/// ```
/// use autokernel_mlkit::{Hdbscan, Matrix};
/// let mut rows = Vec::new();
/// for i in 0..8 { rows.push(vec![i as f64 * 0.1, 0.0]); }        // blob A
/// for i in 0..8 { rows.push(vec![50.0 + i as f64 * 0.1, 0.0]); } // blob B
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut h = Hdbscan::new(4);
/// h.fit(&x).unwrap();
/// assert_eq!(h.n_clusters().unwrap(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Hdbscan {
    min_cluster_size: usize,
    min_samples: usize,
    fitted: Option<FittedHdbscan>,
}

#[derive(Debug, Clone)]
struct FittedHdbscan {
    labels: Vec<i64>,
    n_clusters: usize,
    /// Per-point cluster-membership strength in [0, 1] (1 = core member).
    probabilities: Vec<f64>,
}

/// An edge of the mutual-reachability MST.
#[derive(Debug, Clone, Copy)]
struct MstEdge {
    a: usize,
    b: usize,
    w: f64,
}

impl Hdbscan {
    /// Create an estimator with the given `min_cluster_size`;
    /// `min_samples` defaults to the same value, as in the reference
    /// implementation.
    pub fn new(min_cluster_size: usize) -> Self {
        Hdbscan {
            min_cluster_size,
            min_samples: min_cluster_size,
            fitted: None,
        }
    }

    /// Override `min_samples` (smoothing of the density estimate).
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples.max(1);
        self
    }

    /// Fit on `x` (`n_samples × n_features`).
    pub fn fit(&mut self, x: &Matrix) -> Result<&mut Self> {
        let n = x.rows();
        if self.min_cluster_size < 2 {
            return Err(MlError::BadParam("min_cluster_size must be >= 2".into()));
        }
        if n < self.min_cluster_size {
            return Err(MlError::BadShape(format!(
                "{} samples cannot contain a cluster of size {}",
                n, self.min_cluster_size
            )));
        }

        let dist = pairwise_distances(x);
        let core = core_distances(&dist, self.min_samples.min(n - 1));
        let mst = mutual_reachability_mst(&dist, &core);
        let (labels, n_clusters, probabilities) = extract_clusters(&mst, n, self.min_cluster_size);

        self.fitted = Some(FittedHdbscan {
            labels,
            n_clusters,
            probabilities,
        });
        Ok(self)
    }

    /// Cluster labels: `0..n_clusters` for clustered points, `-1` for noise.
    pub fn labels(&self) -> Result<&[i64]> {
        Ok(&self.fitted.as_ref().ok_or(MlError::NotFitted)?.labels)
    }

    /// Number of clusters found.
    pub fn n_clusters(&self) -> Result<usize> {
        Ok(self.fitted.as_ref().ok_or(MlError::NotFitted)?.n_clusters)
    }

    /// Membership strength of each point in its cluster (0 for noise).
    pub fn probabilities(&self) -> Result<&[f64]> {
        Ok(&self
            .fitted
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .probabilities)
    }

    /// Medoid (member minimising summed in-cluster distance) of each
    /// cluster, usable as the cluster's representative dataset row.
    pub fn medoid_indices(&self, x: &Matrix) -> Result<Vec<usize>> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        let mut medoids = Vec::with_capacity(f.n_clusters);
        for c in 0..f.n_clusters as i64 {
            let members: Vec<usize> = f
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == c)
                .map(|(i, _)| i)
                .collect();
            let medoid = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let da: f64 = members
                        .iter()
                        .map(|&m| Matrix::dist(x.row(a), x.row(m)))
                        .sum();
                    let db: f64 = members
                        .iter()
                        .map(|&m| Matrix::dist(x.row(b), x.row(m)))
                        .sum();
                    da.total_cmp(&db)
                })
                .ok_or_else(|| MlError::BadShape(format!("cluster {c} has no members")))?;
            medoids.push(medoid);
        }
        Ok(medoids)
    }
}

fn pairwise_distances(x: &Matrix) -> Matrix {
    let n = x.rows();
    let mut d = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let dij = Matrix::dist(x.row(i), x.row(j));
            d[(i, j)] = dij;
            d[(j, i)] = dij;
        }
    }
    d
}

/// Distance to the k-th nearest neighbour (k >= 1, self excluded).
fn core_distances(dist: &Matrix, k: usize) -> Vec<f64> {
    let n = dist.rows();
    (0..n)
        .map(|i| {
            let mut row: Vec<f64> = (0..n).filter(|&j| j != i).map(|j| dist[(i, j)]).collect();
            row.sort_by(|a, b| a.total_cmp(b));
            row[k.saturating_sub(1).min(row.len() - 1)]
        })
        .collect()
}

/// Prim's algorithm on the implicit complete mutual-reachability graph.
fn mutual_reachability_mst(dist: &Matrix, core: &[f64]) -> Vec<MstEdge> {
    let n = dist.rows();
    // NaN-safe: `f64::max` *ignores* NaN operands, so a NaN pairwise distance
    // would silently collapse to the finite core distance — turning a
    // NaN-featured row into a zero-cost bridge (a star hub in the MST) that
    // merges every cluster at tiny radii. Treat any NaN leg as unreachable so
    // poisoned rows attach last and condense out as noise.
    let mreach = |a: usize, b: usize| {
        let d = dist[(a, b)];
        if d.is_nan() || core[a].is_nan() || core[b].is_nan() {
            f64::INFINITY
        } else {
            d.max(core[a]).max(core[b])
        }
    };

    let mut in_tree = vec![false; n];
    let mut best_w = vec![f64::INFINITY; n];
    let mut best_src = vec![0usize; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));

    in_tree[0] = true;
    #[allow(clippy::needless_range_loop)]
    for v in 1..n {
        best_w[v] = mreach(0, v);
    }
    for _ in 1..n {
        let v = (0..n)
            .filter(|&v| !in_tree[v])
            .min_by(|&a, &b| best_w[a].total_cmp(&best_w[b]))
            .expect("non-empty frontier");
        in_tree[v] = true;
        edges.push(MstEdge {
            a: best_src[v],
            b: v,
            w: best_w[v],
        });
        for u in 0..n {
            if !in_tree[u] {
                let w = mreach(v, u);
                if w < best_w[u] {
                    best_w[u] = w;
                    best_src[u] = v;
                }
            }
        }
    }
    edges
}

/// Union-find with path compression used while replaying MST edges.
struct UnionFind {
    parent: Vec<usize>,
    /// Dendrogram node id owned by each current root.
    node_of_root: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            node_of_root: (0..n).collect(),
        }
    }
    fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] != v {
            self.parent[v] = self.parent[self.parent[v]];
            v = self.parent[v];
        }
        v
    }
}

/// A node of the single-linkage dendrogram.
#[derive(Debug, Clone)]
struct DendroNode {
    left: usize,
    right: usize,
    /// Merge distance (mutual-reachability scale).
    dist: f64,
    size: usize,
}

/// Build the dendrogram; leaves are `0..n`, internal nodes `n..2n-1`.
fn single_linkage(mst: &[MstEdge], n: usize) -> Vec<DendroNode> {
    let mut edges = mst.to_vec();
    edges.sort_by(|a, b| a.w.total_cmp(&b.w));

    let mut uf = UnionFind::new(n);
    let mut nodes: Vec<DendroNode> = Vec::with_capacity(n.saturating_sub(1));
    let mut sizes: Vec<usize> = vec![1; n]; // indexed by dendrogram node id
    sizes.reserve(n);

    for e in edges {
        let ra = uf.find(e.a);
        let rb = uf.find(e.b);
        debug_assert_ne!(ra, rb, "MST edges never form cycles");
        let na = uf.node_of_root[ra];
        let nb = uf.node_of_root[rb];
        let new_id = n + nodes.len();
        let size = sizes[na] + sizes[nb];
        nodes.push(DendroNode {
            left: na,
            right: nb,
            dist: e.w,
            size,
        });
        sizes.push(size);
        // Merge the sets; attach the new dendrogram node to the new root.
        uf.parent[ra] = rb;
        let root = uf.find(rb);
        uf.node_of_root[root] = new_id;
    }
    nodes
}

/// A cluster of the condensed tree.
#[derive(Debug, Clone)]
struct CondensedCluster {
    parent: Option<usize>,
    children: Vec<usize>,
    /// λ = 1/dist at which this cluster is born.
    lambda_birth: f64,
    /// Accumulated (λ_leave - λ_birth) over member points: the stability.
    stability: f64,
    /// (point, λ at which the point leaves this cluster).
    points: Vec<(usize, f64)>,
    size: usize,
}

/// Condense the dendrogram and extract stable clusters.
///
/// Returns `(labels, n_clusters, probabilities)`.
fn extract_clusters(
    mst: &[MstEdge],
    n: usize,
    min_cluster_size: usize,
) -> (Vec<i64>, usize, Vec<f64>) {
    if n == 1 {
        return (vec![-1], 0, vec![0.0]);
    }
    let dendro = single_linkage(mst, n);
    let root_id = n + dendro.len() - 1;

    let node_size = |id: usize| if id < n { 1 } else { dendro[id - n].size };
    let lambda_of = |dist: f64| {
        if dist > 0.0 {
            1.0 / dist
        } else {
            f64::MAX / 4.0
        }
    };

    // Condensed tree construction: walk from the root downward. Each
    // "cluster" tracks the dendrogram subtree it currently covers.
    let mut clusters: Vec<CondensedCluster> = Vec::new();
    clusters.push(CondensedCluster {
        parent: None,
        children: Vec::new(),
        lambda_birth: 0.0,
        stability: 0.0,
        points: Vec::new(),
        size: n,
    });
    // Stack of (dendrogram node, owning condensed cluster).
    let mut stack: Vec<(usize, usize)> = vec![(root_id, 0)];

    while let Some((node_id, cl)) = stack.pop() {
        if node_id < n {
            // A single point reaching λ=∞ (never leaves until fully split).
            let lam = f64::MAX / 4.0;
            clusters[cl].points.push((node_id, lam));
            continue;
        }
        let node = &dendro[node_id - n];
        let lam = lambda_of(node.dist);
        let (ls, rs) = (node_size(node.left), node_size(node.right));

        if ls >= min_cluster_size && rs >= min_cluster_size {
            // True split: two new clusters are born at λ.
            for &child in &[node.left, node.right] {
                let id = clusters.len();
                clusters.push(CondensedCluster {
                    parent: Some(cl),
                    children: Vec::new(),
                    lambda_birth: lam,
                    stability: 0.0,
                    points: Vec::new(),
                    size: node_size(child),
                });
                clusters[cl].children.push(id);
                stack.push((child, id));
            }
        } else {
            // Spin-off(s) too small: their points fall out of `cl` at λ;
            // the surviving side continues as the same cluster.
            for &child in &[node.left, node.right] {
                if node_size(child) >= min_cluster_size {
                    stack.push((child, cl));
                } else {
                    collect_points(child, n, &dendro, lam, cl, &mut clusters, lambda_of);
                }
            }
        }
    }

    // Stability of each condensed cluster.
    for c in &mut clusters {
        let birth = c.lambda_birth;
        c.stability = c
            .points
            .iter()
            .map(|&(_, lam)| (lam - birth).min(1e12))
            .sum();
    }
    // Children's subtree stabilities also count against the parent: the
    // points in a child left the parent when the child was born.
    // (Handled implicitly: a parent's `points` only contains points that
    // fell out of it directly, plus we add child-birth contributions.)
    for i in 0..clusters.len() {
        if let Some(p) = clusters[i].parent {
            let contrib = (clusters[i].lambda_birth - clusters[p].lambda_birth).min(1e12)
                * clusters[i].size as f64;
            clusters[p].stability += contrib;
        }
    }

    // Excess-of-mass selection, bottom-up: keep a cluster if it is more
    // stable than the sum of its selected descendants.
    let mut selected = vec![false; clusters.len()];
    let mut subtree_stability = vec![0.0f64; clusters.len()];
    let order = topo_bottom_up(&clusters);
    for &i in &order {
        if clusters[i].children.is_empty() {
            selected[i] = true;
            subtree_stability[i] = clusters[i].stability;
        } else {
            let child_sum: f64 = clusters[i]
                .children
                .iter()
                .map(|&c| subtree_stability[c])
                .sum();
            if clusters[i].stability >= child_sum && clusters[i].parent.is_some() {
                selected[i] = true;
                subtree_stability[i] = clusters[i].stability;
                // Deselect all descendants.
                let mut st = clusters[i].children.clone();
                while let Some(d) = st.pop() {
                    selected[d] = false;
                    st.extend(clusters[d].children.iter().copied());
                }
            } else {
                subtree_stability[i] = child_sum;
            }
        }
    }
    // Never select the root (that would be "everything is one cluster").
    selected[0] = false;

    // Assign labels: each point belongs to the selected cluster it falls
    // under (points recorded in a cluster's `points` or in any descendant).
    let mut labels = vec![-1i64; n];
    let mut probabilities = vec![0.0f64; n];
    let mut n_clusters = 0usize;
    for (i, c) in clusters.iter().enumerate() {
        if !selected[i] {
            continue;
        }
        let label = n_clusters as i64;
        n_clusters += 1;
        // Gather the points of this cluster and all descendants.
        let mut pts: Vec<(usize, f64)> = Vec::new();
        let mut st = vec![i];
        while let Some(d) = st.pop() {
            pts.extend(clusters[d].points.iter().copied());
            st.extend(clusters[d].children.iter().copied());
        }
        let max_lambda = pts
            .iter()
            .map(|&(_, l)| l)
            .fold(0.0f64, f64::max)
            .max(c.lambda_birth + 1e-12);
        for (p, lam) in pts {
            labels[p] = label;
            probabilities[p] = if max_lambda > 0.0 {
                (lam / max_lambda).min(1.0)
            } else {
                1.0
            };
        }
    }
    (labels, n_clusters, probabilities)
}

/// Push every leaf point of dendrogram subtree `node_id` into cluster `cl`
/// with leave-λ = max(λ of the split that dropped it, its own merge λ).
fn collect_points(
    node_id: usize,
    n: usize,
    dendro: &[DendroNode],
    lam: f64,
    cl: usize,
    clusters: &mut [CondensedCluster],
    lambda_of: impl Fn(f64) -> f64 + Copy,
) {
    let mut stack = vec![(node_id, lam)];
    while let Some((id, l)) = stack.pop() {
        if id < n {
            clusters[cl].points.push((id, l));
        } else {
            let node = &dendro[id - n];
            let child_l = lambda_of(node.dist).max(l);
            stack.push((node.left, child_l));
            stack.push((node.right, child_l));
        }
    }
}

/// Children-before-parents ordering of the condensed clusters.
fn topo_bottom_up(clusters: &[CondensedCluster]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..clusters.len()).collect();
    let mut depth = vec![0usize; clusters.len()];
    for i in 0..clusters.len() {
        let mut d = 0;
        let mut p = clusters[i].parent;
        while let Some(pp) = p {
            d += 1;
            p = clusters[pp].parent;
        }
        depth[i] = d;
    }
    order.sort_by(|&a, &b| depth[b].cmp(&depth[a]));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, k: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..k)
            .map(|i| {
                let a = i as f64 * 2.399963; // golden-angle spiral, deterministic
                let r = spread * ((i + 1) as f64 / k as f64).sqrt();
                vec![cx + r * a.cos(), cy + r * a.sin()]
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut rows = blob(0.0, 0.0, 15, 1.0);
        rows.extend(blob(50.0, 50.0, 15, 1.0));
        let x = Matrix::from_rows(&rows).unwrap();
        let mut h = Hdbscan::new(5);
        h.fit(&x).unwrap();
        assert_eq!(
            h.n_clusters().unwrap(),
            2,
            "labels: {:?}",
            h.labels().unwrap()
        );
        let labels = h.labels().unwrap();
        // Each blob is label-pure.
        let first = labels[0];
        assert!(first >= 0);
        assert!(labels[..15].iter().all(|&l| l == first));
        let second = labels[15];
        assert!(second >= 0 && second != first);
        assert!(labels[15..].iter().all(|&l| l == second));
    }

    #[test]
    fn noise_points_get_minus_one() {
        let mut rows = blob(0.0, 0.0, 12, 1.0);
        rows.extend(blob(100.0, 0.0, 12, 1.0));
        // Isolated outliers far from both blobs, and from each other.
        rows.push(vec![50.0, 500.0]);
        rows.push(vec![-300.0, -300.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let mut h = Hdbscan::new(5);
        h.fit(&x).unwrap();
        let labels = h.labels().unwrap();
        assert_eq!(labels[24], -1, "outlier should be noise: {labels:?}");
        assert_eq!(labels[25], -1, "outlier should be noise: {labels:?}");
        let probs = h.probabilities().unwrap();
        assert_eq!(probs[24], 0.0);
    }

    #[test]
    fn three_blobs_three_clusters() {
        let mut rows = blob(0.0, 0.0, 10, 0.5);
        rows.extend(blob(40.0, 0.0, 10, 0.5));
        rows.extend(blob(0.0, 40.0, 10, 0.5));
        let x = Matrix::from_rows(&rows).unwrap();
        let mut h = Hdbscan::new(4);
        h.fit(&x).unwrap();
        assert_eq!(h.n_clusters().unwrap(), 3);
    }

    #[test]
    fn medoids_belong_to_their_cluster() {
        let mut rows = blob(0.0, 0.0, 10, 1.0);
        rows.extend(blob(30.0, 30.0, 10, 1.0));
        let x = Matrix::from_rows(&rows).unwrap();
        let mut h = Hdbscan::new(4);
        h.fit(&x).unwrap();
        let medoids = h.medoid_indices(&x).unwrap();
        assert_eq!(medoids.len(), h.n_clusters().unwrap());
        let labels = h.labels().unwrap();
        for (c, &m) in medoids.iter().enumerate() {
            assert_eq!(labels[m], c as i64);
        }
    }

    #[test]
    fn rejects_degenerate_params() {
        let x = Matrix::from_rows(&blob(0.0, 0.0, 10, 1.0)).unwrap();
        assert!(Hdbscan::new(1).fit(&x).is_err());
        assert!(Hdbscan::new(11).fit(&x).is_err());
    }

    #[test]
    fn uniform_line_single_cluster_or_noise_free_labels() {
        // Uniform density: either one cluster or all noise is acceptable,
        // but labels must be consistent (no cluster ids >= n_clusters).
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 0.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut h = Hdbscan::new(3);
        h.fit(&x).unwrap();
        let k = h.n_clusters().unwrap() as i64;
        for &l in h.labels().unwrap() {
            assert!(l >= -1 && l < k);
        }
    }

    #[test]
    fn mst_has_n_minus_one_edges_and_spans() {
        let rows = blob(0.0, 0.0, 8, 2.0);
        let x = Matrix::from_rows(&rows).unwrap();
        let d = pairwise_distances(&x);
        let core = core_distances(&d, 3);
        let mst = mutual_reachability_mst(&d, &core);
        assert_eq!(mst.len(), 7);
        // Spanning: union-find over the edges connects everything.
        let mut uf = UnionFind::new(8);
        for e in &mst {
            let (ra, rb) = (uf.find(e.a), uf.find(e.b));
            uf.parent[ra] = rb;
        }
        let root = uf.find(0);
        for v in 1..8 {
            assert_eq!(uf.find(v), root);
        }
    }

    #[test]
    fn nan_poisoned_rows_do_not_panic_and_clean_blobs_still_separate() {
        // Two clean blobs plus two rows whose features are NaN: every
        // pairwise distance touching them is NaN. Fitting must not panic
        // (the old partial_cmp(..).unwrap() comparators did), labels must
        // stay in range, and the clean blobs must still come out as
        // distinct clusters.
        let mut rows = blob(0.0, 0.0, 10, 0.5);
        rows.extend(blob(60.0, 60.0, 10, 0.5));
        rows.push(vec![f64::NAN, 0.0]);
        rows.push(vec![f64::NAN, f64::NAN]);
        let x = Matrix::from_rows(&rows).unwrap();
        let mut h = Hdbscan::new(4);
        h.fit(&x).unwrap();
        let k = h.n_clusters().unwrap() as i64;
        assert!(k >= 2, "clean blobs must still separate, got {k} clusters");
        for &l in h.labels().unwrap() {
            assert!((-1..k).contains(&l));
        }
        let labels = h.labels().unwrap();
        let first = labels[0];
        assert!(first >= 0 && labels[..10].iter().all(|&l| l == first));
        let second = labels[10];
        assert!(second >= 0 && second != first);
        assert!(labels[10..20].iter().all(|&l| l == second));
        let _ = h.medoid_indices(&x).unwrap();
    }

    #[test]
    fn core_distance_is_kth_neighbor() {
        // Points at 0, 1, 3, 6 on a line. For k=2, core(0) = dist to 2nd
        // nearest = 3.
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![3.0], vec![6.0]]).unwrap();
        let d = pairwise_distances(&x);
        let core = core_distances(&d, 2);
        assert_eq!(core[0], 3.0);
        assert_eq!(core[1], 2.0);
        assert_eq!(core[2], 3.0); // neighbours of 3 sit at distances 2, 3, 3
        assert_eq!(core[3], 5.0);
    }
}
