//! Principal component analysis.
//!
//! Matches sklearn's `PCA`: components are eigenvectors of the sample
//! covariance matrix, explained-variance ratios sum to 1 over all
//! components. When there are fewer samples than features (the paper's
//! 170×640 case) the dual ("Gram-matrix") formulation is used, which
//! computes the same nonzero spectrum from an n×n instead of a d×d
//! eigenproblem.

use crate::eigen::eigen_symmetric;
use crate::matrix::Matrix;
use crate::{MlError, Result};

/// Principal component analysis estimator.
///
/// ```
/// use autokernel_mlkit::{Matrix, Pca};
/// // Points stretched along the first axis.
/// let x = Matrix::from_rows(&[
///     vec![0.0, 0.1], vec![5.0, -0.1], vec![10.0, 0.05], vec![15.0, 0.0],
/// ]).unwrap();
/// let mut pca = Pca::new(2);
/// pca.fit(&x).unwrap();
/// let ratio = pca.explained_variance_ratio().unwrap();
/// assert!(ratio[0] > 0.99); // one dominant direction
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    n_components: usize,
    fitted: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    /// Per-feature means subtracted before projection.
    mean: Vec<f64>,
    /// `n_components × n_features`; row `i` is component `i`.
    components: Matrix,
    /// Variance along each kept component.
    explained_variance: Vec<f64>,
    /// Fraction of total variance along each kept component.
    explained_variance_ratio: Vec<f64>,
}

impl Pca {
    /// Create a PCA that keeps `n_components` components.
    pub fn new(n_components: usize) -> Self {
        Pca {
            n_components,
            fitted: None,
        }
    }

    /// Fit on `x` (`n_samples × n_features`).
    pub fn fit(&mut self, x: &Matrix) -> Result<&mut Self> {
        let (n, d) = x.shape();
        if n < 2 {
            return Err(MlError::BadShape("PCA needs at least 2 samples".into()));
        }
        let max_comp = self.n_components.min(n - 1).min(d);
        if max_comp == 0 {
            return Err(MlError::BadParam("n_components must be >= 1".into()));
        }

        let mean = x.col_means();
        let xc = x.center_by(&mean)?;

        // Total variance = sum of per-feature variances; the ratio
        // denominator regardless of which eigenproblem we solve.
        let denom = (n - 1) as f64;
        let total_variance: f64 = xc
            .rows_iter()
            .flat_map(|r| r.iter().map(|v| v * v))
            .sum::<f64>()
            / denom;

        let (eigvals, components) = if n <= d {
            // Dual PCA: eigen of the Gram matrix XXᵀ (n×n). For eigenpair
            // (λ, u) of XXᵀ, v = Xᵀu / sqrt(λ) is a unit eigenvector of
            // XᵀX with the same eigenvalue.
            let gram = xc.gram();
            let e = eigen_symmetric(&gram)?;
            let mut comps = Matrix::zeros(max_comp, d);
            let mut vals = Vec::with_capacity(max_comp);
            for c in 0..max_comp {
                let lambda = e.values[c].max(0.0);
                vals.push(lambda / denom);
                if lambda <= 1e-300 {
                    continue; // Leave a zero row for a null component.
                }
                let scale = 1.0 / lambda.sqrt();
                for i in 0..n {
                    let ui = e.vectors[(i, c)];
                    if ui == 0.0 {
                        continue;
                    }
                    let xrow = xc.row(i);
                    let crow = comps.row_mut(c);
                    for (cv, &xv) in crow.iter_mut().zip(xrow) {
                        *cv += ui * xv * scale;
                    }
                }
            }
            (vals, comps)
        } else {
            // Primal PCA: eigen of the covariance matrix (d×d).
            let cov = xc.covariance_of_centered();
            let e = eigen_symmetric(&cov)?;
            let mut comps = Matrix::zeros(max_comp, d);
            let mut vals = Vec::with_capacity(max_comp);
            for c in 0..max_comp {
                vals.push(e.values[c].max(0.0));
                for j in 0..d {
                    comps[(c, j)] = e.vectors[(j, c)];
                }
            }
            (vals, comps)
        };

        let ratio: Vec<f64> = if total_variance > 0.0 {
            eigvals.iter().map(|v| v / total_variance).collect()
        } else {
            vec![0.0; eigvals.len()]
        };

        self.fitted = Some(Fitted {
            mean,
            components,
            explained_variance: eigvals,
            explained_variance_ratio: ratio,
        });
        Ok(self)
    }

    /// Project `x` onto the fitted components (`n_samples × n_components`).
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        if x.cols() != f.mean.len() {
            return Err(MlError::BadShape("transform feature count mismatch".into()));
        }
        let xc = x.center_by(&f.mean)?;
        xc.matmul(&f.components.transpose())
    }

    /// Fit and transform in one call.
    pub fn fit_transform(&mut self, x: &Matrix) -> Result<Matrix> {
        self.fit(x)?;
        self.transform(x)
    }

    /// Map projected points back to the original feature space.
    pub fn inverse_transform(&self, z: &Matrix) -> Result<Matrix> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        if z.cols() != f.components.rows() {
            return Err(MlError::BadShape(
                "inverse_transform component count mismatch".into(),
            ));
        }
        let mut x = z.matmul(&f.components)?;
        for r in 0..x.rows() {
            for (v, m) in x.row_mut(r).iter_mut().zip(&f.mean) {
                *v += m;
            }
        }
        Ok(x)
    }

    /// Variance captured by each kept component.
    pub fn explained_variance(&self) -> Result<&[f64]> {
        Ok(&self
            .fitted
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .explained_variance)
    }

    /// Fraction of the total variance captured by each kept component.
    pub fn explained_variance_ratio(&self) -> Result<&[f64]> {
        Ok(&self
            .fitted
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .explained_variance_ratio)
    }

    /// The fitted components (`n_components × n_features`).
    pub fn components(&self) -> Result<&Matrix> {
        Ok(&self.fitted.as_ref().ok_or(MlError::NotFitted)?.components)
    }

    /// Number of components actually kept (may be < requested for small data).
    pub fn n_components_fitted(&self) -> Result<usize> {
        Ok(self
            .fitted
            .as_ref()
            .ok_or(MlError::NotFitted)?
            .components
            .rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A dataset stretched along (1,1): first PC must align with it.
    fn diag_line() -> Matrix {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let t = i as f64;
                vec![t + 0.01 * ((i % 3) as f64), t - 0.01 * ((i % 2) as f64)]
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let x = diag_line();
        let mut pca = Pca::new(2);
        pca.fit(&x).unwrap();
        let ratio = pca.explained_variance_ratio().unwrap();
        assert!(ratio[0] > 0.999, "ratio = {ratio:?}");
        let c = pca.components().unwrap();
        let (a, b) = (c[(0, 0)], c[(0, 1)]);
        assert!((a.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-2);
        assert!((a - b).abs() < 1e-2, "component not along (1,1): ({a},{b})");
    }

    #[test]
    fn ratios_sum_to_at_most_one_and_descend() {
        let rows: Vec<Vec<f64>> = (0..15)
            .map(|i| {
                let t = i as f64;
                vec![3.0 * t, t.sin() * 5.0, (t * 0.7).cos(), 0.1 * t * t]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut pca = Pca::new(4);
        pca.fit(&x).unwrap();
        let r = pca.explained_variance_ratio().unwrap();
        let sum: f64 = r.iter().sum();
        assert!(sum <= 1.0 + 1e-9);
        for w in r.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "ratios not descending: {r:?}");
        }
    }

    #[test]
    fn dual_and_primal_agree_on_spectrum() {
        // 5 samples, 3 features -> dual path; transpose-ish data forces primal.
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![2.0, 1.0, 1.0],
            vec![3.0, 4.0, 0.0],
            vec![4.0, 3.0, 2.0],
            vec![5.0, 6.0, 1.5],
        ])
        .unwrap();
        // Dual (n <= d is false here: 5 > 3, so primal). Build a wide version
        // by transposing to force the dual path and compare nonzero spectra
        // of X and Xᵀ — they share singular values.
        let mut p1 = Pca::new(2);
        p1.fit(&x).unwrap();
        let xt = x.transpose();
        let mut p2 = Pca::new(2);
        p2.fit(&xt).unwrap();
        // Spectra differ (different centering), but both must be valid PCAs:
        // projections reproduce variance ordering.
        let v1 = p1.explained_variance().unwrap();
        let v2 = p2.explained_variance().unwrap();
        assert!(v1[0] >= v1[1] && v2[0] >= v2[1]);
    }

    #[test]
    fn transform_then_inverse_approximates_input_with_full_rank() {
        let x = diag_line();
        let mut pca = Pca::new(2);
        let z = pca.fit_transform(&x).unwrap();
        let back = pca.inverse_transform(&z).unwrap();
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                assert!((back[(i, j)] - x[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn reconstruction_error_decreases_with_components() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let t = i as f64 * 0.3;
                vec![
                    t,
                    2.0 * t + t.sin(),
                    t.cos() * 3.0,
                    0.5 * t * t,
                    (1.3 * t).sin(),
                ]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut errs = Vec::new();
        for k in 1..=4 {
            let mut pca = Pca::new(k);
            let z = pca.fit_transform(&x).unwrap();
            let back = pca.inverse_transform(&z).unwrap();
            let err: f64 = (0..x.rows())
                .map(|i| Matrix::sq_dist(back.row(i), x.row(i)))
                .sum();
            errs.push(err);
        }
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "error not monotone: {errs:?}");
        }
    }

    #[test]
    fn errors_on_unfitted_and_bad_shapes() {
        let pca = Pca::new(2);
        assert!(pca.transform(&Matrix::zeros(3, 3)).is_err());
        let mut pca = Pca::new(1);
        assert!(pca.fit(&Matrix::zeros(1, 4)).is_err()); // too few samples
        let mut pca = Pca::new(1);
        pca.fit(&diag_line()).unwrap();
        assert!(pca.transform(&Matrix::zeros(2, 5)).is_err());
    }
}
