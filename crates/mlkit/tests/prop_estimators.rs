//! Property-based tests for the mlkit estimators: invariants that must
//! hold for arbitrary (well-formed) data.

use autokernel_mlkit::model_selection::{k_fold, train_test_split};
use autokernel_mlkit::preprocess::{MinMaxScaler, StandardScaler};
use autokernel_mlkit::tree::{DecisionTreeClassifier, DecisionTreeRegressor, Node, TreeParams};
use autokernel_mlkit::{eigen::eigen_symmetric, KMeans, KNearestNeighbors, Matrix, Pca};
use proptest::prelude::*;

/// A well-conditioned random matrix: n rows, d cols, values in ±50.
fn arb_matrix(
    n: std::ops::Range<usize>,
    d: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (n, d).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::collection::vec(-50.0f64..50.0, cols..=cols),
            rows..=rows,
        )
        .prop_map(move |data| Matrix::from_rows(&data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn matrix_transpose_involution(m in arb_matrix(1..12, 1..12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_identity(m in arb_matrix(1..10, 1..10)) {
        let left = Matrix::identity(m.rows()).matmul(&m).unwrap();
        let right = m.matmul(&Matrix::identity(m.cols())).unwrap();
        prop_assert_eq!(&left, &m);
        prop_assert_eq!(&right, &m);
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrices(m in arb_matrix(2..8, 2..8)) {
        // Symmetrise: s = m mᵀ is symmetric PSD.
        let s = m.gram();
        let e = eigen_symmetric(&s).unwrap();
        // Eigenvalues of a PSD matrix are non-negative (numerically).
        for &v in &e.values {
            prop_assert!(v > -1e-6 * (1.0 + e.values[0].abs()), "negative eigenvalue {v}");
        }
        // Trace preserved.
        let trace: f64 = (0..s.rows()).map(|i| s[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() <= 1e-6 * (1.0 + trace.abs()));
    }

    #[test]
    fn pca_ratios_descend_and_sum_below_one(m in arb_matrix(4..20, 2..10)) {
        let mut pca = Pca::new(6);
        if pca.fit(&m).is_err() { return Ok(()); }
        let r = pca.explained_variance_ratio().unwrap();
        let sum: f64 = r.iter().sum();
        prop_assert!(sum <= 1.0 + 1e-9, "ratios sum to {sum}");
        for w in r.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn pca_reconstruction_error_monotone(m in arb_matrix(6..15, 3..7)) {
        let max_k = m.cols().min(m.rows() - 1);
        let mut prev = f64::INFINITY;
        for k in 1..=max_k {
            let mut pca = Pca::new(k);
            let z = pca.fit_transform(&m).unwrap();
            let back = pca.inverse_transform(&z).unwrap();
            let err: f64 = (0..m.rows()).map(|i| Matrix::sq_dist(back.row(i), m.row(i))).sum();
            prop_assert!(err <= prev + 1e-6, "error rose from {prev} to {err} at k={k}");
            prev = err;
        }
    }

    #[test]
    fn kmeans_labels_point_to_nearest_centroid(m in arb_matrix(6..20, 1..5), k in 1usize..4) {
        let k = k.min(m.rows());
        let mut km = KMeans::new(k, 11).with_n_init(2);
        km.fit(&m).unwrap();
        let labels = km.labels().unwrap();
        let centroids = km.centroids().unwrap();
        for (i, row) in m.rows_iter().enumerate() {
            let assigned = Matrix::sq_dist(row, centroids.row(labels[i]));
            for c in 0..k {
                prop_assert!(assigned <= Matrix::sq_dist(row, centroids.row(c)) + 1e-9);
            }
        }
        // Inertia equals the summed assigned distances.
        let explicit: f64 = m.rows_iter().enumerate()
            .map(|(i, r)| Matrix::sq_dist(r, centroids.row(labels[i])))
            .sum();
        prop_assert!((explicit - km.inertia().unwrap()).abs() <= 1e-6 * (1.0 + explicit));
    }

    #[test]
    fn scalers_roundtrip_and_bound(m in arb_matrix(2..15, 1..6)) {
        let mut std = StandardScaler::new();
        let z = std.fit_transform(&m).unwrap();
        let back = std.inverse_transform(&z).unwrap();
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                prop_assert!((back[(i, j)] - m[(i, j)]).abs() < 1e-8);
            }
        }
        let mut mm = MinMaxScaler::new();
        let z = mm.fit_transform(&m).unwrap();
        for v in z.as_slice() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(v));
        }
    }

    #[test]
    fn tree_classifier_training_accuracy_is_perfect_on_separable_labels(
        m in arb_matrix(4..25, 1..4),
    ) {
        // Label = sign of the first feature: perfectly separable, so an
        // unbounded tree must fit it exactly (distinct feature values).
        let labels: Vec<usize> = (0..m.rows()).map(|i| usize::from(m[(i, 0)] > 0.0)).collect();
        let mut clf = DecisionTreeClassifier::new(TreeParams::default());
        clf.fit(&m, &labels).unwrap();
        prop_assert_eq!(clf.predict(&m).unwrap(), labels);
    }

    #[test]
    fn tree_leaf_budget_is_respected(m in arb_matrix(8..30, 1..4), budget in 2usize..6) {
        let targets: Vec<Vec<f64>> = (0..m.rows()).map(|i| vec![m[(i, 0)] * 2.0]).collect();
        let y = Matrix::from_rows(&targets).unwrap();
        let mut reg = DecisionTreeRegressor::new(TreeParams {
            max_leaf_nodes: Some(budget),
            ..TreeParams::default()
        });
        reg.fit(&m, &y).unwrap();
        prop_assert!(reg.tree().unwrap().n_leaves() <= budget);
        // Node arena is consistent: every split's children exist.
        let nodes = reg.tree().unwrap().nodes();
        for node in nodes {
            if let Node::Split { left, right, .. } = node {
                prop_assert!(*left < nodes.len() && *right < nodes.len());
            }
        }
    }

    #[test]
    fn knn_one_is_exact_on_training_data(m in arb_matrix(3..15, 1..4)) {
        // Deduplicate identical rows by labelling them identically.
        let labels: Vec<usize> = (0..m.rows())
            .map(|i| {
                (0..m.rows())
                    .find(|&j| m.row(j) == m.row(i))
                    .unwrap()
            })
            .collect();
        let mut knn = KNearestNeighbors::new(1);
        knn.fit(&m, &labels).unwrap();
        prop_assert_eq!(knn.predict(&m).unwrap(), labels);
    }

    #[test]
    fn train_test_split_partitions(n in 2usize..500, frac in 0.0f64..1.0, seed: u64) {
        let s = train_test_split(n, frac, seed);
        prop_assert_eq!(s.train.len() + s.test.len(), n);
        prop_assert!(!s.train.is_empty() && !s.test.is_empty());
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn k_fold_covers_each_index_once(n in 4usize..100, k in 2usize..5, seed: u64) {
        let k = k.min(n);
        let folds = k_fold(n, k, seed);
        let mut seen = vec![0usize; n];
        for (train, val) in &folds {
            prop_assert_eq!(train.len() + val.len(), n);
            for &v in val {
                seen[v] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }
}
