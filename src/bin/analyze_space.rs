//! Kernel-space analyzer driver: prove the configuration space against
//! every shipped device model and emit the SARIF diagnostics report.
//!
//! For each device the tool (1) classifies all 640 configurations
//! `Valid | Invalid | Degraded` and runs the dominance pass, and
//! (2) self-checks the analyzer against the live runtime: every
//! `Invalid` verdict must correspond to a `validate_launch` rejection
//! with the identical resource/requested/limit triple, and every
//! launchable verdict to an acceptance. Any disagreement means the
//! analyzer drifted from the runtime and the tool exits nonzero — this
//! is the drift tripwire `check.sh` runs on every build.
//!
//! The combined report is written to
//! `reports/kernel_space_analysis.json` (override with the first
//! positional argument).
//!
//! ```text
//! cargo run --bin analyze_space                # writes reports/...
//! cargo run --bin analyze_space -- out.json    # custom destination
//! ```

use autokernel::analyze::{KernelSpaceAnalyzer, SpaceAnalysis, Verdict};
use autokernel::gemm::{model, GemmShape, KernelConfig};
use autokernel::sim::{validate_launch, DeviceSpec, SimError};

/// Compare analyzer verdicts with live runtime validation for one
/// device; returns the number of disagreements (0 = in sync).
fn self_check(device: &DeviceSpec, analysis: &SpaceAnalysis) -> usize {
    let shape = GemmShape::new(1024, 1024, 1024);
    let mut mismatches = 0;
    for (cfg, result) in KernelConfig::all().iter().zip(&analysis.configs) {
        let range = match model::launch_range(cfg, &shape) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("analyze_space: {cfg}: bad launch range: {e}");
                mismatches += 1;
                continue;
            }
        };
        let profile = model::profile(cfg, &shape, device);
        let agreed = match (&result.verdict, validate_launch(device, &profile, &range)) {
            (
                Verdict::Invalid {
                    resource,
                    requested,
                    limit,
                },
                Err(SimError::Exhausted(e)),
            ) => *resource == e.resource && *requested == e.requested && *limit == e.limit,
            (Verdict::Valid | Verdict::Degraded { .. }, Ok(())) => true,
            _ => false,
        };
        if !agreed {
            eprintln!(
                "analyze_space: DRIFT on {} / {}: analyzer says {:?}",
                device.name, cfg, result.verdict
            );
            mismatches += 1;
        }
    }
    mismatches
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "reports/kernel_space_analysis.json".to_string());

    let devices = [
        DeviceSpec::amd_r9_nano(),
        DeviceSpec::desktop_gpu(),
        DeviceSpec::embedded_accelerator(),
        DeviceSpec::host_cpu(),
        DeviceSpec::edge_dsp(),
    ];

    let mut analyses = Vec::new();
    let mut drift = 0;
    for device in &devices {
        let analysis = match KernelSpaceAnalyzer::new(device.clone()).analyze() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("analyze_space: analysis of {} failed: {e}", device.name);
                std::process::exit(2);
            }
        };
        drift += self_check(device, &analysis);
        println!(
            "{:<32} valid {:>3}  invalid {:>3}  degraded {:>3}  dominated {:>3}",
            analysis.device,
            analysis.valid_count(),
            analysis.invalid_count(),
            analysis.degraded_count(),
            analysis.dominated_count()
        );
        analyses.push(analysis);
    }

    if drift > 0 {
        eprintln!("analyze_space: {drift} analyzer/runtime disagreement(s) — the shared resource model has drifted");
        std::process::exit(1);
    }
    println!(
        "self-check: analyzer verdicts agree with validate_launch on all {} devices",
        devices.len()
    );

    // The report is only useful if it actually demonstrates findings:
    // at least one statically invalid and one dominated configuration
    // must exist somewhere across the shipped devices.
    let total_invalid: usize = analyses.iter().map(SpaceAnalysis::invalid_count).sum();
    let total_dominated: usize = analyses.iter().map(SpaceAnalysis::dominated_count).sum();
    if total_invalid == 0 || total_dominated == 0 {
        eprintln!(
            "analyze_space: expected findings missing (invalid {total_invalid}, dominated {total_dominated})"
        );
        std::process::exit(1);
    }

    let rendered = match autokernel::analyze::render_report(&analyses) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze_space: report serialisation failed: {e}");
            std::process::exit(2);
        }
    };
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("analyze_space: cannot create {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, rendered.as_bytes()) {
        eprintln!("analyze_space: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!(
        "wrote {out_path} ({} invalid, {total_dominated} dominated across {} devices)",
        total_invalid,
        devices.len()
    );
}
