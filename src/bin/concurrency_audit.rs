//! Concurrency audit driver: atomic-ordering roles, lock-order graph,
//! and the interleaving model checker, rolled into one SARIF report.
//!
//! Three passes, mirroring `analyze_space`'s drift-tripwire shape:
//!
//! 1. **Static audit** — every atomic site in the serving modules
//!    ([`autokernel::analyze::concurrency::AUDIT_TARGETS`]) must carry a
//!    bound `// atomic:role(...)` annotation whose role is consistent
//!    with the memory orderings it uses, and the per-function
//!    lock-acquisition graph must be acyclic. Any finding exits 1.
//! 2. **Model checker self-check** — the five interleaving models
//!    explore exhaustively and cleanly, and every seeded mutation is
//!    caught. A clean model that fails, an incomplete exploration, or a
//!    mutation that slips through exits 1.
//! 3. **Golden report** — the combined SARIF document is compared
//!    byte-for-byte against `reports/concurrency_audit.json`; drift
//!    exits 1. Run with `BLESS=1` to re-bless after an intentional
//!    change.
//!
//! Exit status: 0 clean, 1 findings/drift, 2 infrastructure error.
//!
//! ```text
//! cargo run --bin concurrency_audit            # audit + compare
//! BLESS=1 cargo run --bin concurrency_audit    # rewrite the golden
//! ```

use autokernel::analyze::concurrency::{audit_workspace, render_concurrency_report};
use autokernel::analyze::interleave::self_check;
use std::path::Path;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "reports/concurrency_audit.json".to_string());

    let audit = match audit_workspace(Path::new(".")) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("concurrency_audit: cannot read audit targets: {e}");
            std::process::exit(2);
        }
    };

    for m in &audit.modules {
        println!(
            "{:<20} sites {:>3}  declared {:>3}  fns-with-locks {:>2}  findings {:>2}",
            m.label,
            m.sites.len(),
            m.sites.iter().filter(|s| s.role.is_some()).count(),
            m.functions.len(),
            m.findings.len()
        );
    }
    println!(
        "lock graph: {} edge(s), {} cycle(s)",
        audit.edges.len(),
        audit.cycles.len()
    );

    let mut failed = false;
    if !audit.findings.is_empty() {
        for f in &audit.findings {
            eprintln!("{f}");
        }
        eprintln!(
            "concurrency_audit: {} finding(s) in the static audit",
            audit.findings.len()
        );
        failed = true;
    }

    let checks = self_check();
    for row in &checks {
        let outcome = match &row.violation {
            Some(v) => format!("violation: {v}"),
            None => format!("clean ({} schedules)", row.executions),
        };
        let verdict = if row.expected { "ok" } else { "UNEXPECTED" };
        println!(
            "model {:<18} mutation {:<24} {:<10} {}",
            row.model, row.mutation, verdict, outcome
        );
        if !row.expected {
            failed = true;
        }
    }
    if failed {
        eprintln!("concurrency_audit: audit or model-checker failures above");
        std::process::exit(1);
    }
    println!(
        "self-check: {} atomic site(s) all declared, lock graph acyclic, {} model-checker row(s) as expected",
        audit.total_sites(),
        checks.len()
    );

    let rendered = match render_concurrency_report(&audit, &checks) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("concurrency_audit: report serialisation failed: {e}");
            std::process::exit(2);
        }
    };

    let bless = std::env::var("BLESS").map(|v| v == "1").unwrap_or(false);
    if bless {
        if let Some(dir) = Path::new(&out_path).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("concurrency_audit: cannot create {}: {e}", dir.display());
                    std::process::exit(2);
                }
            }
        }
        if let Err(e) = std::fs::write(&out_path, rendered.as_bytes()) {
            eprintln!("concurrency_audit: cannot write {out_path}: {e}");
            std::process::exit(2);
        }
        println!("blessed {out_path}");
        return;
    }

    match std::fs::read_to_string(&out_path) {
        Ok(golden) if golden == rendered => {
            println!("report matches {out_path}");
        }
        Ok(_) => {
            eprintln!(
                "concurrency_audit: report drifted from {out_path} — \
                 re-run with BLESS=1 after reviewing the change"
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("concurrency_audit: cannot read golden {out_path}: {e}");
            std::process::exit(2);
        }
    }
}
