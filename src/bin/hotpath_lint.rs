//! Hot-path lint driver: scan the serving modules for latent panics.
//!
//! With no arguments, lints the canonical hot-path file set
//! ([`autokernel::analyze::lint::HOT_PATH_FILES`]) plus the
//! NaN-ordering sweep set ([`TOTAL_CMP_FILES`], `no-partial-cmp` only)
//! relative to the current directory (run from the workspace root, as
//! `check.sh` does).
//! With arguments, lints exactly those files instead — which is how the
//! CI negative test points it at a fixture that *must* fail.
//!
//! Exit status: 0 when clean, 1 when any violation is found, 2 when a
//! target file cannot be read.
//!
//! ```text
//! cargo run --bin hotpath_lint                 # the serving modules
//! cargo run --bin hotpath_lint -- path/to.rs   # explicit targets
//! ```

use autokernel::analyze::lint::{lint_file, Violation, HOT_PATH_FILES, TOTAL_CMP_FILES};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let targets: Vec<PathBuf> = if args.is_empty() {
        HOT_PATH_FILES
            .iter()
            .chain(TOTAL_CMP_FILES.iter())
            .map(PathBuf::from)
            .collect()
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let started = Instant::now();
    let mut violations: Vec<Violation> = Vec::new();
    for path in &targets {
        match lint_file(path) {
            Ok(mut v) => violations.append(&mut v),
            Err(e) => {
                eprintln!("hotpath_lint: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    let elapsed = started.elapsed();

    for v in &violations {
        println!("{v}");
    }
    println!(
        "hotpath_lint: {} file(s), {} violation(s), {:.1} ms",
        targets.len(),
        violations.len(),
        elapsed.as_secs_f64() * 1e3
    );
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
