//! `autokernel` — command-line front end for the tuning pipeline.
//!
//! ```text
//! autokernel dataset [--device <name>] [--out <file>]
//!     collect the 170-shape paper dataset and write it as JSON
//! autokernel tune [--device <name>] [--budget <n>] [--prune <method>]
//!                 [--selector <kind>] [--export <file>] [--save-tree <file>]
//!     run the full pipeline and report scores
//! autokernel inspect [--device <name>]
//!     print the Figure 2 / Figure 3 structure headlines
//! autokernel devices
//!     list the simulated devices
//! ```

use autokernel::core::codegen::CompiledTree;
use autokernel::core::{
    PerformanceDataset, PipelineConfig, PruneMethod, SelectorKind, TuningPipeline,
};
use autokernel::mlkit::Pca;
use autokernel::sim::{DeviceSpec, Platform};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?
            .clone();
        flags.insert(key.to_string(), value);
        i += 2;
    }
    Ok(flags)
}

fn device_by_flag(flags: &HashMap<String, String>) -> Result<DeviceSpec, String> {
    let name = flags.get("device").map(String::as_str).unwrap_or("nano");
    Platform::standard()
        .device_by_name(name)
        .map(|d| (*d).clone())
        .map_err(|_| format!("unknown device '{name}' (try: nano, desktop, embedded, cpu)"))
}

fn prune_by_name(name: &str) -> Result<PruneMethod, String> {
    Ok(match name {
        "topn" => PruneMethod::TopN,
        "kmeans" => PruneMethod::KMeans,
        "pca-kmeans" => PruneMethod::PcaKMeans,
        "hdbscan" => PruneMethod::Hdbscan,
        "tree" => PruneMethod::DecisionTree,
        other => {
            return Err(format!(
                "unknown prune method '{other}' (topn|kmeans|pca-kmeans|hdbscan|tree)"
            ))
        }
    })
}

fn selector_by_name(name: &str) -> Result<SelectorKind, String> {
    Ok(match name {
        "tree" => SelectorKind::DecisionTree,
        "forest" => SelectorKind::RandomForest,
        "1nn" => SelectorKind::OneNearestNeighbor,
        "3nn" => SelectorKind::ThreeNearestNeighbors,
        "linear-svm" => SelectorKind::LinearSvm,
        "radial-svm" => SelectorKind::RadialSvm,
        other => {
            return Err(format!(
                "unknown selector '{other}' (tree|forest|1nn|3nn|linear-svm|radial-svm)"
            ))
        }
    })
}

fn cmd_dataset(flags: HashMap<String, String>) -> Result<(), String> {
    let device = device_by_flag(&flags)?;
    eprintln!("collecting 170 x 640 dataset on {} ...", device.name);
    let ds = PerformanceDataset::collect_paper_dataset(&device).map_err(|e| e.to_string())?;
    let json = ds.to_json();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| e.to_string())?;
            eprintln!("wrote {} bytes to {path}", json.len());
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_tune(flags: HashMap<String, String>) -> Result<(), String> {
    let device = device_by_flag(&flags)?;
    let config = PipelineConfig {
        budget: flags
            .get("budget")
            .map(|b| b.parse::<usize>().map_err(|e| e.to_string()))
            .transpose()?
            .unwrap_or(6),
        prune: prune_by_name(flags.get("prune").map(String::as_str).unwrap_or("tree"))?,
        selector: selector_by_name(flags.get("selector").map(String::as_str).unwrap_or("tree"))?,
        ..PipelineConfig::default()
    };

    eprintln!(
        "tuning on {} (budget {}, prune {}, selector {}) ...",
        device.name,
        config.budget,
        config.prune.name(),
        config.selector.name()
    );
    let shapes: Vec<_> = autokernel::workloads::paper_dataset()
        .into_iter()
        .flat_map(|n| {
            n.shapes
                .into_iter()
                .map(move |s| (s, n.network.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    let pipeline = TuningPipeline::run(&device, &shapes, config).map_err(|e| e.to_string())?;

    println!("shipped kernels ({}):", pipeline.shipped_configs().len());
    for cfg in pipeline.shipped_kernel_configs() {
        println!("  {cfg}");
    }
    println!(
        "held-out ceiling:  {:.2}%",
        pipeline.achievable_ceiling() * 100.0
    );
    println!(
        "held-out selector: {:.2}%",
        pipeline.test_score().map_err(|e| e.to_string())? * 100.0
    );

    if let Some(path) = flags.get("export") {
        let src = pipeline.export_rust().map_err(|e| e.to_string())?;
        std::fs::write(path, src).map_err(|e| e.to_string())?;
        eprintln!("nested-if selector source written to {path}");
    }
    if let Some(path) = flags.get("report") {
        let md = autokernel::core::report::markdown_report(&pipeline).map_err(|e| e.to_string())?;
        std::fs::write(path, md).map_err(|e| e.to_string())?;
        eprintln!("markdown report written to {path}");
    }
    if let Some(path) = flags.get("save-tree") {
        let tree = CompiledTree::from_selector(pipeline.selector()).map_err(|e| e.to_string())?;
        std::fs::write(path, tree.to_json()).map_err(|e| e.to_string())?;
        eprintln!("compiled tree written to {path}");
    }
    Ok(())
}

fn cmd_inspect(flags: HashMap<String, String>) -> Result<(), String> {
    let device = device_by_flag(&flags)?;
    let ds = PerformanceDataset::collect_paper_dataset(&device).map_err(|e| e.to_string())?;
    let counts = ds.optimal_counts();
    let mut nz: Vec<usize> = counts.iter().copied().filter(|&c| c > 0).collect();
    nz.sort_unstable_by(|a, b| b.cmp(a));
    println!("device:            {}", device.name);
    println!("shapes x configs:  {} x {}", ds.n_shapes(), ds.n_configs());
    println!("distinct optima:   {}", nz.len());
    println!(
        "dominant config:   {} wins ({:.1}x runner-up)",
        nz[0],
        nz[0] as f64 / nz.get(1).copied().unwrap_or(1).max(1) as f64
    );
    let mut pca = Pca::new(20);
    pca.fit(&ds.normalized_matrix())
        .map_err(|e| e.to_string())?;
    let mut cum = 0.0;
    let ratios = pca.explained_variance_ratio().map_err(|e| e.to_string())?;
    for threshold in [0.80, 0.90, 0.95] {
        let mut needed = ratios.len();
        cum = 0.0;
        for (i, r) in ratios.iter().enumerate() {
            cum += r;
            if cum >= threshold {
                needed = i + 1;
                break;
            }
        }
        println!(
            "PCA {:.0}% variance: {} components",
            threshold * 100.0,
            needed
        );
    }
    let _ = cum;
    Ok(())
}

fn cmd_devices() {
    for d in Platform::standard().devices() {
        println!(
            "{:<34} {:?}  {} CUs x {}-wide waves, {:.1} TFLOP/s, {:.0} GB/s",
            d.name,
            d.device_type,
            d.compute_units,
            d.wave_width,
            d.peak_flops / 1e12,
            d.mem_bandwidth / 1e9
        );
    }
}

const USAGE: &str = "usage: autokernel <dataset|tune|inspect|devices> [--flag value ...]
  dataset   --device <nano|desktop|embedded|cpu>  --out <file>
  tune      --device <...> --budget <n> --prune <topn|kmeans|pca-kmeans|hdbscan|tree>
            --selector <tree|forest|1nn|3nn|linear-svm|radial-svm>
            --export <file.rs> --save-tree <file.json> --report <file.md>
  inspect   --device <...>
  devices";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "dataset" => parse_flags(&args[1..]).and_then(cmd_dataset),
        "tune" => parse_flags(&args[1..]).and_then(cmd_tune),
        "inspect" => parse_flags(&args[1..]).and_then(cmd_inspect),
        "devices" => {
            cmd_devices();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
