//! Head-to-head evaluation of the analytical zero-benchmark selector
//! against the six learned classifiers (the Table I protocol).
//!
//! The tool rebuilds the paper's experiment exactly — 170-shape dataset
//! on the R9 Nano model, 136/34 split with seed 42, decision-tree
//! pruning to a six-config shipped set — then scores on the held-out
//! rows:
//!
//! 1. every learned classifier in [`SelectorKind::all`], trained on the
//!    training rows (geomean + restricted-oracle accuracy), and
//! 2. the [`AnalyticalSelector`]: the roofline scorer picking among the
//!    same shipped set with **zero** benchmark launches — it never sees
//!    the dataset at all, only the device model and the shape.
//!
//! Self-checks (exit 1 on violation):
//! - the analytical geomean must reach at least
//!   [`ANALYTICAL_FLOOR`] of the shipped-set oracle ceiling;
//! - the rendered report must match the committed golden copy in
//!   `reports/analytical_eval.json` byte-for-byte (re-bless an
//!   intentional change with `BLESS=1`).
//!
//! Exit status: 0 ok, 1 threshold/drift failure, 2 IO failure.
//!
//! ```text
//! cargo run --release --bin analytical_eval            # gate
//! BLESS=1 cargo run --release --bin analytical_eval    # re-bless
//! ```

use autokernel::core::evaluate::{achievable_score, oracle_accuracy, selection_score};
use autokernel::core::select::Selector;
use autokernel::core::{AnalyticalSelector, PerformanceDataset, PruneMethod, SelectorKind};
use autokernel::mlkit::model_selection::train_test_split;
use autokernel::sim::DeviceSpec;

/// Minimum analytical-selector geomean as a fraction of the shipped-set
/// oracle ceiling (the PR's acceptance bar).
const ANALYTICAL_FLOOR: f64 = 0.90;
/// Where the blessed report lives.
const GOLDEN_PATH: &str = "reports/analytical_eval.json";

/// The paper's canonical experiment constants (pipeline defaults).
const TEST_FRACTION: f64 = 0.2;
const SEED: u64 = 42;
const BUDGET: usize = 6;

fn round4(x: f64) -> f64 {
    (x * 1e4).round() / 1e4
}

fn obj(entries: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(x: f64) -> serde_json::Value {
    serde_json::Value::Num(x)
}

fn main() {
    let device = DeviceSpec::amd_r9_nano();
    let ds = match PerformanceDataset::collect_paper_dataset(&device) {
        Ok(ds) => ds,
        Err(e) => {
            eprintln!("analytical_eval: dataset collection failed: {e}");
            std::process::exit(2);
        }
    };
    let split = train_test_split(ds.n_shapes(), TEST_FRACTION, SEED);
    let shipped = match PruneMethod::DecisionTree.select(&ds, &split.train, BUDGET, SEED) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("analytical_eval: pruning failed: {e}");
            std::process::exit(2);
        }
    };
    let ceiling = achievable_score(&ds, &split.test, &shipped);

    // The six learned classifiers, trained on the training rows.
    let mut classifiers = Vec::new();
    for kind in SelectorKind::all() {
        let sel = match Selector::train(kind, &ds, &split.train, &shipped, SEED) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("analytical_eval: training {} failed: {e}", kind.name());
                std::process::exit(2);
            }
        };
        let chosen = match sel.select_rows(&ds, &split.test) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("analytical_eval: {} selection failed: {e}", kind.name());
                std::process::exit(2);
            }
        };
        let geomean = selection_score(&ds, &split.test, &chosen);
        let accuracy = oracle_accuracy(&ds, &split.test, &shipped, &chosen);
        classifiers.push((kind.name().to_string(), geomean, accuracy));
    }

    // The analytical selector: same shipped set, zero benchmark data.
    let analytical = match AnalyticalSelector::with_candidates(&device, &shipped) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analytical_eval: analytical selector failed: {e}");
            std::process::exit(2);
        }
    };
    let mut chosen = Vec::with_capacity(split.test.len());
    for &row in &split.test {
        match analytical.select_shape(&ds.shapes[row]) {
            Ok(idx) => chosen.push(idx),
            Err(e) => {
                eprintln!("analytical_eval: analytical selection failed on row {row}: {e}");
                std::process::exit(2);
            }
        }
    }
    let analytical_geomean = selection_score(&ds, &split.test, &chosen);
    let analytical_accuracy = oracle_accuracy(&ds, &split.test, &shipped, &chosen);
    let oracle_fraction = if ceiling > 0.0 {
        analytical_geomean / ceiling
    } else {
        0.0
    };

    println!("{:<22} {:>9} {:>11}", "selector", "geomean", "oracle-acc");
    for (name, geomean, accuracy) in &classifiers {
        println!("{name:<22} {geomean:>9.4} {accuracy:>11.2}");
    }
    println!(
        "{:<22} {:>9.4} {:>11.2}  (zero benchmark launches)",
        "analytical", analytical_geomean, analytical_accuracy
    );
    println!(
        "shipped-set oracle ceiling {ceiling:.4}; analytical reaches {:.1}% of it",
        oracle_fraction * 100.0
    );

    if oracle_fraction < ANALYTICAL_FLOOR {
        eprintln!(
            "analytical_eval: FAIL — analytical geomean {analytical_geomean:.4} is {:.3} of the \
             oracle ceiling {ceiling:.4}, below the {ANALYTICAL_FLOOR} floor",
            oracle_fraction
        );
        std::process::exit(1);
    }

    // Render the report (4-decimal rounding keeps the golden diff
    // readable; every number is a pure function of seeded simulation).
    let report = obj(vec![
        ("device", serde_json::Value::Str(device.name.to_string())),
        ("test_rows", num(split.test.len() as f64)),
        ("shipped_budget", num(BUDGET as f64)),
        (
            "shipped_configs",
            serde_json::Value::Array(shipped.iter().map(|&c| num(c as f64)).collect()),
        ),
        ("oracle_ceiling_geomean", num(round4(ceiling))),
        (
            "analytical",
            obj(vec![
                ("geomean", num(round4(analytical_geomean))),
                ("oracle_fraction", num(round4(oracle_fraction))),
                ("oracle_accuracy", num(round4(analytical_accuracy))),
                ("benchmark_launches", num(0.0)),
            ]),
        ),
        (
            "classifiers",
            serde_json::Value::Array(
                classifiers
                    .iter()
                    .map(|(name, geomean, accuracy)| {
                        obj(vec![
                            ("name", serde_json::Value::Str(name.clone())),
                            ("geomean", num(round4(*geomean))),
                            ("oracle_accuracy", num(round4(*accuracy))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let rendered = match serde_json::to_string_pretty(&report) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analytical_eval: report serialisation failed: {e}");
            std::process::exit(2);
        }
    };

    if std::env::var_os("BLESS").is_some_and(|v| v == "1") {
        if let Some(dir) = std::path::Path::new(GOLDEN_PATH).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("analytical_eval: cannot create {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
        if let Err(e) = std::fs::write(GOLDEN_PATH, rendered.as_bytes()) {
            eprintln!("analytical_eval: cannot write {GOLDEN_PATH}: {e}");
            std::process::exit(2);
        }
        println!("blessed {GOLDEN_PATH}; review and commit the diff");
        return;
    }

    match std::fs::read_to_string(GOLDEN_PATH) {
        Ok(golden) if golden == rendered => {
            println!("report matches the golden copy at {GOLDEN_PATH}");
        }
        Ok(_) => {
            eprintln!(
                "analytical_eval: FAIL — report drifted from {GOLDEN_PATH} \
                 (re-bless with BLESS=1 if intentional)"
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("analytical_eval: cannot read {GOLDEN_PATH}: {e} (bless with BLESS=1)");
            std::process::exit(2);
        }
    }
}
