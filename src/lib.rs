//! # autokernel
//!
//! Umbrella crate for the automated-kernel-selection study: re-exports the
//! public API of every sub-crate so examples and downstream users can
//! depend on a single crate.
//!
//! - [`analyze`] — offline static analysis: kernel-space validity /
//!   dominance verdicts and the hot-path source lint.
//! - [`core`] — the selection pipeline (dataset, pruning, selection,
//!   deployment codegen).
//! - [`sim`] — the SYCL-like runtime and device performance models.
//! - [`gemm`] — the tiled GEMM kernel family.
//! - [`workloads`] — neural-network workloads and their GEMM lowering.
//! - [`mlkit`] — the from-scratch machine-learning toolkit.
//! - [`tuner`] — search strategies (random, hill climbing, basin
//!   hopping, evolutionary) for spaces too large to brute-force.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use autokernel_analyze as analyze;
pub use autokernel_core as core;
pub use autokernel_gemm as gemm;
pub use autokernel_mlkit as mlkit;
pub use autokernel_sycl_sim as sim;
pub use autokernel_tuner as tuner;
pub use autokernel_workloads as workloads;
