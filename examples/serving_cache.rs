//! Serving-layer demo: the concurrent shape→kernel decision cache.
//!
//! A trained pipeline sits behind an inference server. The same few
//! layer shapes recur on every request, so after the first touch every
//! dispatch decision is a sharded hash-map lookup instead of a model
//! inference. This example:
//!
//! 1. trains the default pipeline,
//! 2. serves a recurring traffic mix from 8 threads through the cache,
//! 3. prints the telemetry (hit rate, per-kernel pick counts, hit/miss
//!    latency) and the measured cached-vs-uncached speedup,
//! 4. launches one kernel per distinct shape with its decision attached
//!    to the simulator's Chrome-trace timeline.
//!
//! Run with: `cargo run --release --example serving_cache`

use autokernel::core::{PipelineConfig, SelectorKind, TuningPipeline};
use autokernel::gemm::{GemmShape, TiledGemmKernel};
use autokernel::sim::trace::TraceRecorder;
use autokernel::sim::{Buffer, DeviceType, Platform, Queue};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shapes: Vec<(GemmShape, String)> = [
        (12544, 27, 64),
        (3136, 144, 24),
        (784, 1152, 128),
        (196, 2304, 256),
        (49, 960, 160),
        (1, 4096, 1000),
        (8, 25088, 4096),
        (64, 64, 64),
        (512, 512, 512),
        (1024, 1024, 1024),
        (32, 4096, 4096),
        (6272, 576, 128),
        (2, 2048, 1000),
        (128, 128, 1000),
        (25088, 576, 128),
        (3136, 576, 192),
    ]
    .iter()
    .map(|&(m, k, n)| (GemmShape::new(m, k, n), "serving".to_string()))
    .collect();

    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu)?;

    println!("training the pipeline on {} ...", device.name);
    // Serve a random forest: the most expensive selector to consult,
    // i.e. the regime where the decision cache pays the most. (With the
    // paper's recommended plain decision tree, a single inference is
    // already ~as cheap as a cache hit — the cache then only buys the
    // telemetry.)
    let pipeline = TuningPipeline::run(
        &device,
        &shapes,
        PipelineConfig {
            selector: SelectorKind::RandomForest,
            ..PipelineConfig::default()
        },
    )?;

    // The recurring traffic mix an inference server would see: a small
    // working set of unseen shapes, requested over and over.
    let working_set: Vec<GemmShape> = (0..8)
        .map(|i| GemmShape::new(100 + i * 37, 256 + i * 11, 64 + i * 23))
        .collect();
    const THREADS: usize = 8;
    const REQUESTS_PER_THREAD: usize = 250;

    println!(
        "\nserving {} requests ({THREADS} threads x {REQUESTS_PER_THREAD}) over {} distinct shapes ...",
        THREADS * REQUESTS_PER_THREAD,
        working_set.len()
    );
    let served = Instant::now();
    crossbeam::thread::scope(|scope| {
        for t in 0..THREADS {
            let pipeline = &pipeline;
            let working_set = &working_set;
            scope.spawn(move |_| {
                for i in 0..REQUESTS_PER_THREAD {
                    let shape = &working_set[(t + i) % working_set.len()];
                    pipeline.select_cached(shape).expect("selection succeeds");
                }
            });
        }
    })
    .expect("serving threads join");
    let served = served.elapsed();

    let t = pipeline.telemetry();
    println!("served in {:.2} ms wall clock", served.as_secs_f64() * 1e3);
    println!(
        "telemetry: {} hits / {} misses (hit rate {:.1}%), counters reconcile: {}",
        t.hits(),
        t.misses(),
        t.hit_rate() * 100.0,
        t.hits() + t.misses() == t.total()
    );
    println!(
        "mean decision latency: {:.0} ns on a hit vs {:.0} ns on a miss ({:.0}x)",
        t.mean_hit_nanos(),
        t.mean_miss_nanos(),
        t.mean_miss_nanos() / t.mean_hit_nanos().max(1.0)
    );
    println!("picks per shipped kernel:");
    for (config, count) in t.picks() {
        if count > 0 {
            println!("  config {config:>3}: {count} picks");
        }
    }

    // Direct cached-vs-uncached comparison on one warm shape.
    let probe = working_set[0];
    let reps = 2000u32;
    let start = Instant::now();
    for _ in 0..reps {
        pipeline.selector().select_shape(&probe)?;
    }
    let uncached = start.elapsed() / reps;
    let start = Instant::now();
    for _ in 0..reps {
        pipeline.select_cached(&probe)?;
    }
    let cached = start.elapsed() / reps;
    println!(
        "\nwarm-shape decision: {:.0} ns cached vs {:.0} ns uncached ({:.0}x faster)",
        cached.as_nanos() as f64,
        uncached.as_nanos() as f64,
        uncached.as_nanos() as f64 / cached.as_nanos().max(1) as f64
    );

    // Launch one kernel per distinct shape, tracing the decision that
    // picked it.
    let queue = Queue::new(device);
    let mut trace = TraceRecorder::new();
    for shape in &working_set {
        let outcome = pipeline.serving().select_outcome(shape)?;
        let config = autokernel::gemm::config::KernelConfig::from_index(outcome.config_index)
            .expect("valid index");
        let a = Buffer::from_vec(vec![1.0f32; shape.m * shape.k]);
        let b = Buffer::from_vec(vec![1.0f32; shape.k * shape.n]);
        let c = Buffer::from_vec(vec![0.0f32; shape.m * shape.n]);
        let kernel = TiledGemmKernel::new(config, *shape, a, b, c)?;
        let event = queue.submit(&kernel, kernel.preferred_range()?)?;
        trace.record_with_decision("serving", event, outcome.into());
    }
    println!(
        "\ntraced {} launches ({} served from cache); first 120 chars of the Chrome trace:",
        trace.decided_launches(),
        trace.cache_hit_launches()
    );
    let json = trace.to_chrome_trace();
    println!("  {}...", &json[..120.min(json.len())]);

    println!("\nserving_cache OK");
    Ok(())
}
