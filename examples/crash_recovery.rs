//! Crash recovery demo: durable serving state surviving a hard kill.
//!
//! A pipeline trains on the AMD R9 Nano and serves through an
//! [`autokernel::core::Ingress`] front door whose dispatcher snapshots
//! the fleet's learned state — bandit arms, drift generation, warm
//! decision cache, telemetry, measured cost models — to disk at a
//! configurable chunk cadence (atomic temp-file + rename writes). The
//! serving device is a desktop GPU the offline model never saw, so
//! drift trips and the online layer relearns live. Mid-stream the
//! process "crashes" (the ingress is dropped, its report is lost);
//! a completely fresh stack then warm-restarts from the last snapshot
//! via [`autokernel::core::Ingress::start_restored`] and resumes
//! serving at oracle level immediately, while a cold stack would pay
//! the whole adaptation price again. A deliberately corrupted snapshot
//! shows the typed degraded path: bad sections are salvaged around or
//! the restore falls back to a cold start — never a panic.
//!
//! Run with: `cargo run --release --example crash_recovery`

use autokernel::core::resilient::ResilientPolicy;
use autokernel::core::{
    DeviceShard, GemmRequest, Ingress, IngressConfig, IngressRequest, OnlineConfig,
    PerformanceDataset, PipelineConfig, RestoreOutcome, SchedConfig, ShardedScheduler, Snapshot,
    SnapshotFault, SnapshotFaultInjector, SnapshotterConfig, TuningPipeline,
};
use autokernel::gemm::GemmShape;
use autokernel::sim::{DeviceSpec, Queue};
use std::sync::Arc;

fn shapes() -> Vec<(GemmShape, String)> {
    [
        (64, 64, 64),
        (512, 512, 512),
        (1, 4096, 1000),
        (12544, 27, 64),
        (196, 2304, 256),
        (3136, 144, 24),
        (49, 960, 160),
        (784, 1152, 128),
        (32, 4096, 4096),
        (2, 2048, 1000),
        (6272, 576, 128),
        (1024, 1024, 1024),
    ]
    .iter()
    .map(|&(m, k, n)| (GemmShape::new(m, k, n), "conv/fc".to_string()))
    .collect()
}

fn gpu_shard(pipeline: &TuningPipeline, label: &str) -> DeviceShard {
    let queue = Queue::timing_only(Arc::new(DeviceSpec::desktop_gpu()));
    let (exec, online) = pipeline
        .device_adaptive_executor(queue, ResilientPolicy::default(), OnlineConfig::default())
        .expect("adaptive shard builds");
    // The serving device differs from the training substrate; declare
    // drift up front so the bandit learns the GPU from launch one, as
    // an operator rolling out new hardware would.
    online.force_drift();
    DeviceShard::new(label, exec)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nano = DeviceSpec::amd_r9_nano();
    let gpu = DeviceSpec::desktop_gpu();
    let dir =
        std::env::temp_dir().join(format!("autokernel-crash-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let snap_path = dir.join("serving.snap");

    println!("training the pipeline on {} ...", nano.name);
    let dataset = PerformanceDataset::collect(&nano, &shapes())?;
    let pipeline = TuningPipeline::from_dataset(dataset.clone(), PipelineConfig::default())?;
    let pool: Vec<GemmShape> = dataset.shapes.clone();

    // --- Phase 1: serve with background snapshotting, then crash. ---
    let config = IngressConfig {
        dispatch_chunk: 16,
        ..IngressConfig::default()
    };
    let snapshots = SnapshotterConfig::new(&snap_path, gpu.clone()).with_cadence(2);
    let sched = ShardedScheduler::new(vec![gpu_shard(&pipeline, "gpu-0")], SchedConfig::default())?;
    let ingress = Ingress::start_with_snapshots(sched, config, snapshots.clone());
    println!(
        "phase 1: serving 20 rounds on {} with snapshots every 2 chunks ...",
        gpu.name
    );
    for round in 0..20usize {
        for &shape in &pool {
            ingress.submit(IngressRequest::new(GemmRequest::zeroed(shape)))?;
        }
        if round == 19 {
            println!("phase 1: killing the process mid-stream (report lost)");
        }
    }
    drop(ingress); // the crash: only the snapshot file survives
    println!(
        "phase 1: crashed; last snapshot on disk: {} ({} bytes)",
        snap_path.display(),
        std::fs::metadata(&snap_path)?.len()
    );

    // --- Phase 2: warm restart a fresh stack from the snapshot. ---
    let fresh_pipeline = TuningPipeline::from_dataset(dataset.clone(), PipelineConfig::default())?;
    let sched = ShardedScheduler::new(
        vec![gpu_shard(&fresh_pipeline, "gpu-0")],
        SchedConfig::default(),
    )?;
    let (ingress, outcome) = Ingress::start_restored(sched, config, snapshots.clone());
    println!("phase 2: restore outcome: {outcome:?}");
    for _ in 0..5usize {
        for &shape in &pool {
            ingress.submit(IngressRequest::new(GemmRequest::zeroed(shape)))?;
        }
    }
    let (report, sched) = ingress.finish()?;
    let fleet = sched.export_state();
    println!(
        "phase 2: submitted {} served {} shed {} (accounted: {}), \
         cumulative shard served across the restart: {}",
        report.submitted,
        report.served,
        report.shed_total(),
        report.accounted(),
        fleet.shards[0].served,
    );

    // --- Phase 3: the corruption-tolerant path. ---
    let injector = SnapshotFaultInjector::new(42);
    for fault in [
        SnapshotFault::BitFlips { count: 6 },
        SnapshotFault::Truncate { keep_fraction: 0.4 },
    ] {
        let hurt = dir.join(format!("{}.snap", fault.label()));
        std::fs::copy(&snap_path, &hurt)?;
        injector.inject(&hurt, &fault)?;
        let sched = ShardedScheduler::new(
            vec![gpu_shard(&fresh_pipeline, "gpu-0")],
            SchedConfig::default(),
        )?;
        let outcome = match Snapshot::load(&hurt) {
            Ok(snapshot) => {
                let mut sched = sched;
                let o = snapshot.restore_fleet(&mut sched, &gpu);
                drop(sched);
                o
            }
            Err(error) => RestoreOutcome::ColdStart { error },
        };
        println!("phase 3: {:<10} -> {outcome:?}", fault.label());
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("done: durable state survived the crash; corruption degraded typed");
    Ok(())
}
