//! Sharded serving demo: one trained pipeline, a fleet of devices.
//!
//! A pipeline trains once on the AMD R9 Nano, then serves the full
//! 170-shape paper workload two ways:
//!
//! 1. **Baseline** — a single resilient executor on one R9 Nano,
//!    launching every request in arrival order.
//! 2. **Fleet** — a [`ShardedScheduler`] over three devices (one R9
//!    Nano plus two desktop GPUs, a realistic mixed-SKU rack), with
//!    same-shape bursts batched into single decisions, perf-aware
//!    routing driven by each device's static shipped-set fitness,
//!    bounded per-device wave queues with stealing, and failure drain.
//!
//! The score is served requests per unit *simulated* time: the fleet
//! must clear at least 2x the single-device throughput on the same
//! stream (the two extra desktop GPUs bring ~1.26x of a Nano's
//! throughput, so the fleet's capacity is ~2.28x — routing only has to
//! not squander it).
//!
//! This file is on the hot-path lint allowlist: no unwraps, no panics,
//! no non-literal indexing.
//!
//! Run with: `cargo run --release --example sharded_serving`

use autokernel::analyze::KernelSpaceAnalyzer;
use autokernel::core::resilient::ResilientPolicy;
use autokernel::core::{
    DeviceShard, GemmRequest, PerformanceDataset, PipelineConfig, RoutingPolicy, SchedConfig,
    ShardedScheduler, TuningPipeline,
};
use autokernel::sim::{DeviceSpec, Queue};
use autokernel::workloads::dataset::paper_shapes;
use std::sync::Arc;

/// Same-shape burst length in the request stream — consecutive
/// arrivals of one shape, as an inference server batching per layer
/// would produce. The scheduler coalesces each burst into one routing
/// and selection decision.
const BURST: usize = 2;
/// Full passes over the 170-shape paper workload.
const EPOCHS: usize = 3;
/// The fleet throughput bar, relative to the single-device baseline.
const REQUIRED_SPEEDUP: f64 = 2.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nano = Arc::new(DeviceSpec::amd_r9_nano());
    let desktop = Arc::new(DeviceSpec::desktop_gpu());

    println!("training the pipeline on {} (paper dataset) ...", nano.name);
    let dataset = PerformanceDataset::collect_paper_dataset(&nano)?;
    let pipeline = TuningPipeline::from_dataset(dataset, PipelineConfig::default())?;

    // The serving stream: EPOCHS passes over the paper workload, each
    // shape arriving in a burst of BURST identical requests.
    let shapes = paper_shapes();
    let mut requests: Vec<GemmRequest> = Vec::with_capacity(shapes.len() * BURST * EPOCHS);
    for _ in 0..EPOCHS {
        for shape in &shapes {
            for _ in 0..BURST {
                requests.push(GemmRequest::zeroed(*shape));
            }
        }
    }
    println!(
        "stream: {} requests ({} shapes x burst {} x {} epochs)\n",
        requests.len(),
        shapes.len(),
        BURST,
        EPOCHS
    );

    // Baseline: one R9 Nano behind a single resilient executor.
    let policy = ResilientPolicy::default();
    let baseline =
        pipeline.device_executor(Queue::timing_only(Arc::clone(&nano)), policy.clone())?;
    let baseline_clock = baseline.queue().clock();
    let baseline_start = baseline_clock.now_s();
    for request in &requests {
        let report = baseline.launch(request.shape, &request.a, &request.b, &request.c)?;
        assert!(!report.event.is_failed());
    }
    let baseline_s = baseline_clock.now_s() - baseline_start;
    let baseline_throughput = requests.len() as f64 / baseline_s;
    println!(
        "baseline ({}): {} requests in {:.3} sim-s -> {:.1} req/sim-s",
        nano.name,
        requests.len(),
        baseline_s,
        baseline_throughput
    );

    // The fleet: each shard is a full selector/executor stack on its
    // own queue, with perf-aware fitness from static analysis of the
    // shipped set on that shard's device.
    let mut shards = Vec::new();
    for (label, device) in [
        ("nano-0", Arc::clone(&nano)),
        ("desktop-0", Arc::clone(&desktop)),
        ("desktop-1", Arc::clone(&desktop)),
    ] {
        let analysis = KernelSpaceAnalyzer::new(device.as_ref().clone()).analyze()?;
        let executor = pipeline.device_executor(Queue::timing_only(device), policy.clone())?;
        let shard = DeviceShard::new(label, executor)
            .with_shipped_analysis(&analysis, pipeline.shipped_configs());
        println!(
            "  shard {label}: shipped-set fitness {:.2}",
            shard.fitness()
        );
        shards.push(shard);
    }

    let mut scheduler = ShardedScheduler::new(
        shards,
        SchedConfig {
            policy: RoutingPolicy::PerfAware,
            queue_capacity: 64,
            batch_window: 4,
            seed: 7,
            parallel: true,
            ..SchedConfig::default()
        },
    )?;
    let report = scheduler.serve(&requests)?;

    println!(
        "\nfleet: {} requests in {:.3} sim-s over {} waves -> {:.1} req/sim-s",
        report.served,
        report.makespan_s,
        report.waves,
        report.throughput()
    );
    for device in &report.devices {
        println!(
            "  {:>10}: {:>4} served in {:>3} batches, {:.3} sim-s busy, healthy={}",
            device.label, device.served, device.batches, device.busy_s, device.healthy
        );
    }
    let telemetry = scheduler.telemetry();
    println!(
        "telemetry: {} batches routed, {} requests coalesced, {} steals, \
         {} rebalanced, {} served",
        telemetry.routed,
        telemetry.batched,
        telemetry.stolen,
        telemetry.rebalanced,
        telemetry.served
    );

    let speedup = report.throughput() / baseline_throughput;
    println!(
        "\nthroughput speedup over the single-device baseline: {speedup:.2}x \
         (required: >= {REQUIRED_SPEEDUP:.1}x)"
    );

    assert_eq!(report.served, requests.len(), "every request must complete");
    assert_eq!(report.dropped, 0, "the scheduler never drops requests");
    assert!(
        telemetry.batched > 0,
        "bursts must coalesce into shared decisions"
    );
    assert!(
        report.devices.iter().all(|d| d.served > 0),
        "every shard must carry traffic"
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "fleet throughput {speedup:.2}x below the {REQUIRED_SPEEDUP:.1}x bar"
    );
    println!("\nsharded_serving OK");
    Ok(())
}
