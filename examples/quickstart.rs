//! Quickstart: the whole pipeline in one sitting.
//!
//! 1. Benchmark the 640-kernel configuration space on a handful of GEMM
//!    shapes (simulated AMD R9 Nano).
//! 2. Prune to a 6-kernel shipped set with the decision-tree method.
//! 3. Train a decision-tree runtime selector.
//! 4. Select a kernel for an unseen shape and actually run it through
//!    the SYCL-like queue, checking the result against a reference GEMM.
//!
//! Run with: `cargo run --release --example quickstart`

use autokernel::core::{PipelineConfig, TuningPipeline};
use autokernel::gemm::reference::{max_abs_diff, parallel_reference_gemm, test_matrices};
use autokernel::gemm::{GemmShape, TiledGemmKernel};
use autokernel::sim::{Buffer, DeviceType, Platform, Queue};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small mixed workload: conv-like (large M), FC-like (tiny M),
    // and square shapes.
    let shapes: Vec<(GemmShape, String)> = [
        (12544, 27, 64),
        (3136, 144, 24),
        (784, 1152, 128),
        (196, 2304, 256),
        (49, 960, 160),
        (1, 4096, 1000),
        (8, 25088, 4096),
        (64, 64, 64),
        (512, 512, 512),
        (1024, 1024, 1024),
        (32, 4096, 4096),
        (6272, 576, 128),
        (2, 2048, 1000),
        (128, 128, 1000),
        (25088, 576, 128),
        (3136, 576, 192),
    ]
    .iter()
    .map(|&(m, k, n)| (GemmShape::new(m, k, n), "demo".to_string()))
    .collect();

    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu)?;

    println!("collecting the performance dataset on {} ...", device.name);
    let pipeline = TuningPipeline::run(&device, &shapes, PipelineConfig::default())?;

    println!(
        "\nshipped kernel set ({} of 640 configurations):",
        pipeline.shipped_configs().len()
    );
    for cfg in pipeline.shipped_kernel_configs() {
        println!("  {cfg}");
    }
    println!(
        "\nachievable ceiling on held-out shapes: {:.1}% of optimal",
        pipeline.achievable_ceiling() * 100.0
    );
    println!(
        "selector score on held-out shapes:     {:.1}% of optimal",
        pipeline.test_score()? * 100.0
    );

    // Use the selector on an unseen shape, then actually run the kernel.
    let unseen = GemmShape::new(300, 700, 120);
    let chosen = pipeline.select(&unseen)?;
    println!("\nselected for unseen {unseen}: {chosen}");

    let (a, b) = test_matrices(unseen, 7);
    let mut expect = vec![0.0f32; unseen.m * unseen.n];
    parallel_reference_gemm(unseen, &a, &b, &mut expect);

    let (ba, bb) = (Buffer::from_vec(a), Buffer::from_vec(b));
    let bc = Buffer::from_vec(vec![0.0f32; unseen.m * unseen.n]);
    let kernel = TiledGemmKernel::new(chosen, unseen, ba, bb, bc.clone())?;
    let queue = Queue::new(device);
    let event = queue.submit(&kernel, kernel.preferred_range()?)?;

    let err = max_abs_diff(&bc.to_vec(), &expect);
    println!(
        "ran {} in {:.1} simulated us ({:.0} GFLOP/s modelled), max |err| vs reference = {:.2e}",
        event.kernel_name(),
        event.duration_s() * 1e6,
        event.cost().achieved_flops(unseen.flops()) / 1e9,
        err
    );
    assert!(err < 1e-3, "kernel result must match the reference");
    println!("\nquickstart OK");
    Ok(())
}
