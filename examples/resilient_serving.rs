//! Resilience demo: fault injection, retries, circuit breakers and the
//! fallback chain.
//!
//! A trained pipeline serves kernel launches on a device that has
//! started misbehaving: 30% of submissions fail transiently, and the
//! configuration the selector likes most has become permanently
//! unlaunchable (think a driver regression for one code path). This
//! example:
//!
//! 1. trains the default pipeline,
//! 2. serves a recurring traffic mix through a [`ResilientExecutor`]
//!    on the faulty queue — every launch completes,
//! 3. prints the resilience telemetry (failures absorbed, retries,
//!    breaker trips, quarantine skips, fallback depths) and the
//!    breaker's verdict on the doomed configuration,
//! 4. melts the device down entirely (every tiled kernel doomed) and
//!    shows traffic degrading to the reference GEMM rather than
//!    failing,
//! 5. dumps a Chrome-trace snippet with the fault/fallback annotations.
//!
//! Run with: `cargo run --release --example resilient_serving`

use autokernel::core::resilient::ResilientPolicy;
use autokernel::core::{PipelineConfig, TuningPipeline};
use autokernel::gemm::GemmShape;
use autokernel::sim::fault::FaultPlan;
use autokernel::sim::trace::TraceRecorder;
use autokernel::sim::{Buffer, DeviceSpec, Queue};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shapes: Vec<(GemmShape, String)> = [
        (12544, 27, 64),
        (3136, 144, 24),
        (784, 1152, 128),
        (196, 2304, 256),
        (49, 960, 160),
        (1, 4096, 1000),
        (8, 25088, 4096),
        (64, 64, 64),
        (512, 512, 512),
        (1024, 1024, 1024),
        (32, 4096, 4096),
        (6272, 576, 128),
        (2, 2048, 1000),
        (128, 128, 1000),
        (25088, 576, 128),
        (3136, 576, 192),
    ]
    .iter()
    .map(|&(m, k, n)| (GemmShape::new(m, k, n), "serving".to_string()))
    .collect();

    let device = Arc::new(DeviceSpec::amd_r9_nano());
    println!("training the pipeline on {} ...", device.name);
    let pipeline = TuningPipeline::run(&device, &shapes, PipelineConfig::default())?;

    // The recurring traffic an inference server would see.
    let working_set: Vec<GemmShape> = (0..8)
        .map(|i| GemmShape::new(96 + i * 37, 64 + i * 11, 48 + i * 23))
        .collect();

    // Doom the configuration the selector leans on hardest, so the
    // primary path keeps running into it.
    let mut counts = std::collections::HashMap::new();
    for shape in &working_set {
        *counts.entry(pipeline.select(shape)?).or_insert(0usize) += 1;
    }
    let (&doomed, _) = counts.iter().max_by_key(|&(_, &n)| n).unwrap();
    println!(
        "shipped configs: {:?}; dooming the selector's favourite: {doomed}",
        pipeline
            .shipped_kernel_configs()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
    );

    // A device that fails 30% of submissions transiently and can never
    // launch the doomed configuration.
    let plan = Arc::new(
        FaultPlan::new(7)
            .with_transient_rate(0.30)
            .doom_kernels_matching(format!("gemm_{doomed}_")),
    );
    let queue = Queue::new(device.clone()).with_fault_plan(plan);
    let executor = pipeline.resilient_executor(queue, ResilientPolicy::default());

    const ROUNDS: usize = 8;
    println!(
        "\nserving {} launches ({ROUNDS} rounds over {} shapes) on the faulty device ...",
        ROUNDS * working_set.len(),
        working_set.len()
    );
    let mut trace = TraceRecorder::new();
    let mut completed = 0usize;
    for round in 0..ROUNDS {
        for shape in &working_set {
            let a = Buffer::new_filled(shape.m * shape.k, 1.0f32);
            let b = Buffer::new_filled(shape.k * shape.n, 1.0f32);
            let c = Buffer::new_filled(shape.m * shape.n, 0.0f32);
            let report = executor.launch_traced(*shape, &a, &b, &c, &mut trace, "resilient")?;
            assert!(!report.event.is_failed());
            completed += 1;
            if round == 0 && report.decision.fallback.is_degraded() {
                println!(
                    "  {shape}: primary pick unavailable, served as {} after {} failed attempt(s)",
                    report.decision.fallback.label(),
                    report.decision.attempts
                );
            }
        }
    }

    let t = pipeline.telemetry();
    println!("\nall {completed} launches completed. resilience telemetry:");
    println!(
        "  {} failures absorbed across {} launches ({} retries)",
        t.launch_failures(),
        t.resilient_launches(),
        t.retries()
    );
    println!(
        "  breaker trips: {}, quarantine skips: {}",
        t.breaker_trips(),
        t.quarantine_skips()
    );
    println!(
        "  fallbacks: {} to the next-best config, {} to the reference GEMM",
        t.fallback_next_best(),
        t.fallback_reference()
    );
    println!(
        "  doomed config {doomed} breaker state: {:?}; quarantined set: {:?}",
        executor.breaker_state(doomed.index()).unwrap(),
        executor.quarantined()
    );

    // Meltdown: every tiled kernel is now unlaunchable. The executor
    // still completes every launch by degrading to the reference GEMM
    // on the fault-free host path.
    let meltdown_plan = Arc::new(FaultPlan::new(11).doom_kernels_matching("gemm_T"));
    let meltdown_queue = Queue::new(device).with_fault_plan(meltdown_plan);
    let meltdown = pipeline.resilient_executor(meltdown_queue, ResilientPolicy::default());
    let mut reference_served = 0usize;
    for shape in &working_set {
        let a = Buffer::new_filled(shape.m * shape.k, 1.0f32);
        let b = Buffer::new_filled(shape.k * shape.n, 1.0f32);
        let c = Buffer::new_filled(shape.m * shape.n, 0.0f32);
        let report = meltdown.launch(*shape, &a, &b, &c)?;
        assert!(!report.event.is_failed());
        if report.decision.fallback.label() == "reference" {
            reference_served += 1;
        }
    }
    println!(
        "\nmeltdown (every tiled config doomed): {reference_served}/{} launches degraded to the \
         reference GEMM, none failed",
        working_set.len()
    );

    let json = trace.to_chrome_trace();
    let snippet = json
        .find("\"fault\"")
        .map(|i| &json[i.saturating_sub(80)..(i + 60).min(json.len())])
        .unwrap_or(&json[..140.min(json.len())]);
    println!(
        "\ntrace: {} events, {} failed, {} degraded; around the first fault annotation:",
        trace.len(),
        trace.failed_launches(),
        trace.degraded_launches()
    );
    println!("  ...{snippet}...");

    println!("\nresilient_serving OK");
    Ok(())
}
