//! Beyond brute force: the paper notes its exhaustive 640-point sweep
//! "is not feasible for more general kernels that have significantly
//! more parameters", pointing at basin hopping and evolutionary
//! algorithms (Kernel Tuner). This example tunes one layer's GEMM with
//! each strategy under a shrinking evaluation budget and shows how much
//! of the brute-force optimum survives.
//!
//! Run with: `cargo run --release --example search_strategies`

use autokernel::gemm::GemmShape;
use autokernel::sim::DeviceSpec;
use autokernel::tuner::{
    BasinHopping, Evolutionary, GemmObjective, HillClimbing, RandomSearch, SearchStrategy,
};

fn main() {
    let device = DeviceSpec::amd_r9_nano();
    // The dominant ResNet layer shape.
    let shape = GemmShape::new(784, 1152, 128);
    let reference = GemmObjective::new(&device, shape);
    let (best_cfg, optimum) = reference.brute_force_best().expect("non-empty space");
    println!(
        "shape {shape}: brute-force optimum {best_cfg} at {:.2} us",
        optimum * 1e6
    );
    println!("(brute force costs 640 evaluations)\n");

    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(RandomSearch),
        Box::new(HillClimbing),
        Box::new(BasinHopping::default()),
        Box::new(Evolutionary::default()),
    ];

    println!(
        "{:<16} {:>8} {:>18} {:>10} {:>8}",
        "strategy", "budget", "found", "us", "gap"
    );
    for budget in [40usize, 80, 160] {
        for s in &strategies {
            let obj = GemmObjective::new(&device, shape);
            let r = s.tune(&obj, budget, 11);
            println!(
                "{:<16} {:>8} {:>18} {:>10.2} {:>7.1}%",
                s.name(),
                budget,
                r.best.to_string(),
                r.best_value * 1e6,
                (r.best_value / optimum - 1.0) * 100.0
            );
        }
        println!();
    }
    println!("gap = slowdown of the found configuration vs the brute-force optimum.");
    println!("With a quarter of the brute-force budget the structured searches land");
    println!("within a few percent — which is what makes ML-driven pruning viable for");
    println!("kernels whose parameter spaces cannot be enumerated.");
}
