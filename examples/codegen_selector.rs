//! Deployment: export the trained decision tree as plain Rust source —
//! the nested-`if` selection procedure the paper recommends embedding
//! in compute libraries — and verify the exported procedure agrees with
//! the in-memory estimator everywhere.
//!
//! Run with: `cargo run --release --example codegen_selector`

use autokernel::core::codegen::{emit_rust_source, CompiledTree};
use autokernel::core::{PipelineConfig, TuningPipeline};
use autokernel::gemm::GemmShape;
use autokernel::sim::{DeviceType, Platform};
use autokernel::workloads::paper_dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tune on the full 170-shape paper dataset.
    let shapes: Vec<(GemmShape, String)> = paper_dataset()
        .into_iter()
        .flat_map(|net| {
            net.shapes
                .into_iter()
                .map(move |s| (s, net.network.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu)?;
    let pipeline = TuningPipeline::run(&device, &shapes, PipelineConfig::default())?;

    // Export.
    let source = pipeline.export_rust()?;
    println!("==== generated selector ====\n{source}\n============================");

    // Equivalence between the generated procedure and the estimator,
    // on the dataset and on a sweep of unseen shapes.
    let compiled = CompiledTree::from_selector(pipeline.selector())?;
    let mut checked = 0usize;
    for net in paper_dataset() {
        for shape in net.shapes {
            assert_eq!(
                compiled.select(&shape),
                pipeline.selector().select_shape(&shape)?,
                "divergence on {shape}"
            );
            checked += 1;
        }
    }
    for m in [1usize, 7, 64, 1000, 50000] {
        for k in [27usize, 256, 4608] {
            for n in [16usize, 128, 1000] {
                let shape = GemmShape::new(m, k, n);
                assert_eq!(
                    compiled.select(&shape),
                    pipeline.selector().select_shape(&shape)?
                );
                checked += 1;
            }
        }
    }
    println!(
        "\ngenerated selector == estimator on {checked} shapes ({} branches, {} leaves)",
        compiled.n_branches(),
        compiled.n_returns()
    );

    // Demonstrate that the emitted source is also written to disk for
    // inclusion in a library build.
    let path = std::env::temp_dir().join("autokernel_generated_selector.rs");
    std::fs::write(
        &path,
        emit_rust_source(&compiled, pipeline.shipped_configs()),
    )?;
    println!("selector source written to {}", path.display());
    Ok(())
}
