//! Choosing the *lowering*, not just the kernel: the paper notes that
//! convolutions reach GEMM via "transformations such as the im2col and
//! Winograd". The two lowerings produce wildly different matrix shapes
//! (im2col: one tall GEMM with K = 9·C; Winograd F(2,3): sixteen small
//! GEMMs with K = C), so the tuned selector can price a layer both ways
//! and pick per layer — exactly the decision a library's conv entry
//! point makes.
//!
//! Run with: `cargo run --release --example lowering_choice`

use autokernel::core::{PipelineConfig, TuningPipeline};
use autokernel::gemm::{model, GemmShape};
use autokernel::sim::{DeviceType, Platform, Queue};
use autokernel::workloads::winograd::winograd_gemm;
use autokernel::workloads::{paper_dataset, vgg16, ConvLayer, Layer};

/// Simulated seconds for one GEMM under the pipeline's selected kernel.
fn gemm_time(pipeline: &TuningPipeline, queue: &Queue, shape: GemmShape) -> f64 {
    let cfg = pipeline.select(&shape).expect("selector works");
    let range = model::launch_range(&cfg, &shape).expect("launchable");
    let profile = model::profile(&cfg, &shape, queue.device());
    queue
        .price(&profile, &range, model::noise_seed(&cfg, &shape))
        .expect("selected config is launchable")
        .1
}

/// Transform overhead: bytes staged to/from memory at DRAM bandwidth.
fn transform_time(bytes: f64, queue: &Queue) -> f64 {
    bytes / queue.device().mem_bandwidth
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu)?;
    let queue = Queue::timing_only(device.clone());

    // Tune once on the paper dataset.
    let shapes: Vec<_> = paper_dataset()
        .into_iter()
        .flat_map(|n| {
            n.shapes
                .into_iter()
                .map(move |s| (s, n.network.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    let pipeline = TuningPipeline::run(&device, &shapes, PipelineConfig::default())?;

    let batch = 16usize;
    println!("VGG-16 3x3 layers at batch {batch} — per-layer lowering choice:\n");
    println!(
        "{:<26} {:>12} {:>12} {:>10}",
        "layer (CxHxW -> C')", "im2col ms", "winograd ms", "winner"
    );

    let mut wino_wins = 0usize;
    let mut total = 0usize;
    for layer in vgg16().layers {
        let Layer::Conv(conv) = layer else { continue };
        let Some(wino_shape) = winograd_gemm(&conv, batch) else {
            continue;
        };
        let im2col_shape = conv.im2col_gemm(batch).expect("standard conv lowers");

        // im2col: one transform pass (write the patch matrix, read it
        // back) + one GEMM.
        let patch_bytes = 4.0 * (im2col_shape.m * im2col_shape.k) as f64;
        let t_im2col =
            transform_time(2.0 * patch_bytes, &queue) + gemm_time(&pipeline, &queue, im2col_shape);

        // Winograd: input + output transforms (4 passes over 16 tile
        // planes) + 16 GEMMs.
        let plane_bytes = 4.0 * (wino_shape.m * wino_shape.k) as f64;
        let out_bytes = 4.0 * (wino_shape.m * wino_shape.n) as f64;
        let t_wino = transform_time(2.0 * 16.0 * plane_bytes + 2.0 * 16.0 * out_bytes, &queue)
            + 16.0 * gemm_time(&pipeline, &queue, wino_shape);

        let winner = if t_wino < t_im2col {
            "winograd"
        } else {
            "im2col"
        };
        if t_wino < t_im2col {
            wino_wins += 1;
        }
        total += 1;
        println!(
            "{:<26} {:>12.3} {:>12.3} {:>10}",
            describe(&conv),
            t_im2col * 1e3,
            t_wino * 1e3,
            winner
        );
    }
    println!(
        "\nwinograd wins {wino_wins}/{total} layers — the choice is shape-dependent,\n\
         so it must be made by the same selection machinery as the kernel choice."
    );
    Ok(())
}

fn describe(c: &ConvLayer) -> String {
    format!(
        "{}x{}x{} -> {}",
        c.in_channels, c.input_size, c.input_size, c.out_channels
    )
}
