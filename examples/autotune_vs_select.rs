//! The paper's motivating scenario: machine-learning *research*
//! workloads, where the model architecture keeps changing.
//!
//! Traditional framework autotuning does trial runs the first time an
//! input size appears and caches the winner — great for fixed
//! topologies, wasteful when the stream of shapes keeps shifting. This
//! example simulates a researcher sweeping network widths and compares
//! total simulated time:
//!
//! - **dynamic autotuner** over the full 640-config space,
//! - **dynamic autotuner** over a pruned 8-kernel set, and
//! - **ahead-of-time ML selection** (no trial runs at all).
//!
//! Run with: `cargo run --release --example autotune_vs_select`

use autokernel::core::autotune::DynamicAutotuner;
use autokernel::core::{PipelineConfig, TuningPipeline};
use autokernel::gemm::GemmShape;
use autokernel::sim::{DeviceType, Platform};
use autokernel::workloads::paper_dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu)?;

    // Tune the pipeline once, offline, on the paper dataset.
    let tuning_shapes: Vec<(GemmShape, String)> = paper_dataset()
        .into_iter()
        .flat_map(|n| {
            n.shapes
                .into_iter()
                .map(move |s| (s, n.network.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    let pipeline = TuningPipeline::run(
        &device,
        &tuning_shapes,
        PipelineConfig {
            budget: 8,
            ..PipelineConfig::default()
        },
    )?;

    // The "research" stream: a researcher sweeps hidden widths of an
    // MLP-ish model; every sweep step changes the GEMM shapes, and each
    // configuration is trained for a few steps (each GEMM runs 20x).
    let mut stream = Vec::new();
    for width in (64..=1024).step_by(64) {
        for batch in [8usize, 32] {
            stream.push(GemmShape::new(batch, 784, width));
            stream.push(GemmShape::new(batch, width, width));
            stream.push(GemmShape::new(batch, width, 10));
        }
    }
    let runs_per_shape = 20usize;
    println!(
        "research stream: {} distinct shapes, {} runs each",
        stream.len(),
        runs_per_shape
    );

    // Strategy 1: dynamic autotuning over all 640 configurations.
    let mut full = DynamicAutotuner::new(&device, vec![]);
    // Strategy 2: dynamic autotuning over the pruned 8-kernel set.
    let mut pruned = DynamicAutotuner::new(&device, pipeline.shipped_configs().to_vec());

    let mut t_full = 0.0f64;
    let mut t_pruned = 0.0f64;
    let mut t_ml = 0.0f64;
    let mut t_oracle = 0.0f64;

    for &shape in &stream {
        let d_full = full.decide(shape);
        t_full += d_full.trial_cost_s + runs_per_shape as f64 * full.run_cost(shape, d_full.config);

        let d_pruned = pruned.decide(shape);
        t_pruned +=
            d_pruned.trial_cost_s + runs_per_shape as f64 * pruned.run_cost(shape, d_pruned.config);

        let ml_cfg = pipeline.select(&shape)?.index();
        t_ml += runs_per_shape as f64 * full.run_cost(shape, ml_cfg);

        // Oracle: free perfect choice (lower bound).
        let oracle_cfg = d_full.config;
        t_oracle += runs_per_shape as f64 * full.run_cost(shape, oracle_cfg);
    }

    println!("\ntotal simulated execution time (lower is better):");
    println!("  dynamic autotune, 640 candidates: {:>9.3} s", t_full);
    println!("  dynamic autotune,   8 candidates: {:>9.3} s", t_pruned);
    println!("  ML selection (no trial runs):     {:>9.3} s", t_ml);
    println!("  oracle (free perfect choice):     {:>9.3} s", t_oracle);
    println!(
        "\nML selection vs full autotune: {:.2}x faster end-to-end",
        t_full / t_ml
    );
    println!(
        "ML selection overhead vs oracle: {:.1}% (the cost of imperfect choices)",
        (t_ml / t_oracle - 1.0) * 100.0
    );
    println!(
        "\n(with long-lived fixed topologies the trial cost amortises away and\n\
         dynamic autotuning wins back its gap — the paper's deployment case)"
    );
    Ok(())
}
