//! SLO-aware ingress demo: concurrent producers in front of the fleet.
//!
//! A pipeline trains once on the AMD R9 Nano, then a three-device
//! fleet (one Nano plus two desktop GPUs) serves the paper workload
//! through the [`Ingress`] layer in two phases:
//!
//! 1. **Steady state** — 8 producer threads submit mixed-priority
//!    traffic (interactive / standard / batch) for five tenants into a
//!    roomy queue. Everything is served; per-class end-to-end latency
//!    comes out of the lock-free log2-bucket histograms, and every
//!    shard's decision cache stays under its configured capacity.
//! 2. **Overload** — the same producers flood a 16-slot queue with a
//!    quota-limited noisy tenant in the mix. Excess load is shed with
//!    *typed* reasons (tenant quota, queue full, deadline expired) —
//!    never silently dropped — and the accounting identity
//!    `submitted == served + shed` closes exactly.
//!
//! This file is on the hot-path lint allowlist: no unwraps, no panics,
//! no non-literal indexing.
//!
//! Run with: `cargo run --release --example ingress_serving`

use autokernel::core::resilient::ResilientPolicy;
use autokernel::core::{
    BoundedCacheConfig, CoreError, DeviceShard, GemmRequest, Ingress, IngressConfig, IngressReport,
    IngressRequest, PerformanceDataset, PipelineConfig, Priority, RoutingPolicy, SchedConfig,
    ShardedScheduler, TenantQuota, TuningPipeline,
};
use autokernel::sim::{DeviceSpec, Queue};
use autokernel::workloads::dataset::paper_shapes;
use std::sync::Arc;
use std::time::Duration;

/// Producer threads per phase.
const PRODUCERS: usize = 8;
/// Requests per producer in the steady-state phase.
const STEADY_PER_PRODUCER: usize = 500;
/// Requests per producer in the overload phase.
const OVERLOAD_PER_PRODUCER: usize = 300;
/// Per-shard decision-cache capacity (entries).
const CACHE_CAPACITY: usize = 256;

fn fleet(pipeline: &TuningPipeline) -> Result<Vec<DeviceShard>, CoreError> {
    let mut shards = Vec::new();
    for (label, device) in [
        ("nano-0", DeviceSpec::amd_r9_nano()),
        ("desktop-0", DeviceSpec::desktop_gpu()),
        ("desktop-1", DeviceSpec::desktop_gpu()),
    ] {
        let executor = pipeline.device_bounded_executor(
            Queue::timing_only(Arc::new(device)),
            ResilientPolicy::default(),
            BoundedCacheConfig {
                capacity: CACHE_CAPACITY,
                ..BoundedCacheConfig::default()
            },
        )?;
        shards.push(DeviceShard::new(label, executor));
    }
    Ok(shards)
}

fn scheduler(pipeline: &TuningPipeline) -> Result<ShardedScheduler, CoreError> {
    ShardedScheduler::new(
        fleet(pipeline)?,
        SchedConfig {
            policy: RoutingPolicy::LeastLoaded,
            queue_capacity: 64,
            batch_window: 8,
            seed: 7,
            parallel: true,
            ..SchedConfig::default()
        },
    )
}

/// Run `per_producer` submissions from each of [`PRODUCERS`] threads
/// through `ingress`, with `deadline` optionally attached to batch
/// traffic. Returns the finished report and the scheduler.
fn drive(
    ingress: Ingress,
    per_producer: usize,
    deadline: Option<Duration>,
) -> Result<(IngressReport, ShardedScheduler), Box<dyn std::error::Error>> {
    let shapes = paper_shapes();
    let mut failed_producers = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|producer| {
                let handle = ingress.handle();
                let shapes = &shapes;
                scope.spawn(move || -> Result<(), CoreError> {
                    for i in 0..per_producer {
                        let index = producer * per_producer + i;
                        let shape = shapes
                            .get(index % shapes.len())
                            .copied()
                            .ok_or(CoreError::Dataset("empty paper workload".to_string()))?;
                        let priority = match index % 3 {
                            0 => Priority::Interactive,
                            1 => Priority::Standard,
                            _ => Priority::Batch,
                        };
                        let mut request = IngressRequest::new(GemmRequest::zeroed(shape))
                            .with_tenant((index % 5) as u32)
                            .with_priority(priority);
                        if let (Some(d), Priority::Batch) = (deadline, priority) {
                            request = request.with_deadline_in(d);
                        }
                        handle.submit(request)?;
                    }
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            if !matches!(handle.join(), Ok(Ok(()))) {
                failed_producers += 1;
            }
        }
    });
    if failed_producers > 0 {
        return Err(format!("{failed_producers} producer thread(s) failed").into());
    }
    Ok(ingress.finish()?)
}

fn print_report(title: &str, report: &IngressReport) {
    println!(
        "\n{title}: submitted {} -> served {} + shed {} over {} waves \
         (tenant-quota {}, queue-full {}, deadline {})",
        report.submitted,
        report.served,
        report.shed_total(),
        report.waves,
        report.shed_tenant_quota,
        report.shed_queue_full,
        report.shed_deadline,
    );
    for class in &report.classes {
        println!(
            "  class {}: {:>5} submitted, {:>5} served, {:>5} shed, \
             e2e p50 {:>9.1} us, p99 {:>9.1} us",
            class.class,
            class.submitted,
            class.served,
            class.shed,
            class.p50_ns / 1e3,
            class.p99_ns / 1e3,
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nano = DeviceSpec::amd_r9_nano();
    println!("training the pipeline on {} (paper dataset) ...", nano.name);
    let dataset = PerformanceDataset::collect_paper_dataset(&nano)?;
    let pipeline = TuningPipeline::from_dataset(dataset, PipelineConfig::default())?;

    // Phase 1 — steady state: a queue deep enough that nothing sheds.
    let steady = Ingress::start(
        scheduler(&pipeline)?,
        IngressConfig {
            queue_capacity: 8192,
            dispatch_chunk: 256,
            tenant_quota: TenantQuota { max_queued: 8192 },
            ..IngressConfig::default()
        },
    );
    let (report, sched) = drive(steady, STEADY_PER_PRODUCER, None)?;
    print_report("steady state", &report);

    let total = (PRODUCERS * STEADY_PER_PRODUCER) as u64;
    assert!(report.accounted(), "submitted == served + shed must hold");
    assert_eq!(report.served, total, "a roomy queue serves everything");
    assert_eq!(report.shed_total(), 0);
    assert!(!report.fleet_degraded);
    for i in 0..3 {
        if let Some(shard) = sched.shard(i) {
            let cache = shard.executor().selector().cache();
            println!(
                "  shard {i}: decision cache {} / {CACHE_CAPACITY} entries, \
                 {} evictions",
                cache.footprint(),
                cache.evictions(),
            );
            assert!(
                cache.footprint() <= CACHE_CAPACITY,
                "decision cache must respect its capacity bound"
            );
        }
    }

    // Phase 2 — overload: a 16-slot queue, a noisy quota-limited
    // tenant, and tight deadlines on batch traffic.
    let overload = Ingress::start(
        scheduler(&pipeline)?,
        IngressConfig {
            queue_capacity: 16,
            dispatch_chunk: 16,
            tenant_quota: TenantQuota { max_queued: 4 },
            batch_headroom: 0.5,
        },
    );
    let (report, _) = drive(
        overload,
        OVERLOAD_PER_PRODUCER,
        Some(Duration::from_micros(1)),
    )?;
    print_report("overload", &report);

    assert!(report.accounted(), "shedding must never break the identity");
    assert!(
        report.shed_total() > 0,
        "an overloaded 16-slot queue must shed"
    );
    assert!(report.served > 0, "admitted work is still served");
    assert_eq!(
        report.shed_total(),
        report.shed_tenant_quota + report.shed_queue_full + report.shed_deadline,
        "every shed carries exactly one typed reason"
    );

    println!("\ningress_serving OK");
    Ok(())
}
