//! Domain scenario: shipping a compute library tuned for ResNet-50
//! inference.
//!
//! Extracts every GEMM a ResNet-50 forward pass performs (im2col
//! lowering), tunes a 6-kernel shipped set on them, and reports the
//! per-layer performance the deployed library would achieve against the
//! 640-kernel oracle — plus the library-size saving, which is the whole
//! point of pruning.
//!
//! Run with: `cargo run --release --example resnet_deployment`

use autokernel::core::{PipelineConfig, TuningPipeline};
use autokernel::gemm::KernelConfig;
use autokernel::sim::{DeviceType, Platform};
use autokernel::workloads::{dataset::unique_gemms, resnet50};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = resnet50();
    let shapes: Vec<_> = unique_gemms(&net, &[1, 4, 16, 32])
        .into_iter()
        .map(|s| (s, net.name.clone()))
        .collect();
    println!(
        "{}: {} unique GEMM shapes across batch sizes 1/4/16/32",
        net.name,
        shapes.len()
    );

    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu)?;
    let pipeline = TuningPipeline::run(&device, &shapes, PipelineConfig::default())?;

    println!("\nshipped kernels:");
    for cfg in pipeline.shipped_kernel_configs() {
        println!("  {cfg}");
    }

    // Per-layer view over the held-out shapes.
    let ds = pipeline.dataset();
    let (_, test) = pipeline.split();
    println!("\nheld-out layer GEMMs ({}):", test.len());
    println!(
        "{:<22} {:>18} {:>12} {:>10}",
        "shape", "selected", "rel. perf", "GFLOP/s"
    );
    for &row in test {
        let shape = ds.shapes[row];
        let chosen = pipeline.select(&shape)?;
        let rel = ds.normalized(row, chosen.index());
        println!(
            "{:<22} {:>18} {:>11.1}% {:>10.0}",
            shape.to_string(),
            chosen.to_string(),
            rel * 100.0,
            ds.gflops(row, chosen.index()),
        );
    }
    println!(
        "\nselector geomean on held-out layers: {:.1}% of optimal (ceiling {:.1}%)",
        pipeline.test_score()? * 100.0,
        pipeline.achievable_ceiling() * 100.0
    );

    // The library-size argument: 64 compile-time kernels vs the shipped
    // compile-time variants (work-group shape is a runtime parameter).
    let shipped_ct: std::collections::BTreeSet<(usize, usize, usize)> = pipeline
        .shipped_kernel_configs()
        .iter()
        .map(|c| (c.tile_rows, c.tile_cols, c.acc_depth))
        .collect();
    println!(
        "\nlibrary size: {} of {} compile-time kernel variants shipped ({}x smaller binary section)",
        shipped_ct.len(),
        KernelConfig::compile_time_variants().len(),
        KernelConfig::compile_time_variants().len() / shipped_ct.len().max(1)
    );
    Ok(())
}
