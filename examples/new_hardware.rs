//! Porting to new hardware "with little developer effort": the entire
//! pipeline re-runs unchanged against a different device model, and the
//! two devices end up shipping *different* kernel sets — the point of
//! auto-tuned selection over hand-tuned heuristics.
//!
//! Run with: `cargo run --release --example new_hardware`

use autokernel::core::{PipelineConfig, TuningPipeline};
use autokernel::gemm::GemmShape;
use autokernel::sim::Platform;
use autokernel::workloads::paper_dataset;
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shapes: Vec<(GemmShape, String)> = paper_dataset()
        .into_iter()
        .flat_map(|n| {
            n.shapes
                .into_iter()
                .map(move |s| (s, n.network.clone()))
                .collect::<Vec<_>>()
        })
        .collect();

    let platform = Platform::standard();
    let mut shipped_sets = Vec::new();

    for device in platform.devices() {
        let pipeline = TuningPipeline::run(device, &shapes, PipelineConfig::default())?;
        println!("\n=== {} ===", device.name);
        println!("shipped kernels:");
        for cfg in pipeline.shipped_kernel_configs() {
            println!("  {cfg}");
        }
        println!(
            "held-out: selector {:.1}% of optimal (ceiling {:.1}%)",
            pipeline.test_score()? * 100.0,
            pipeline.achievable_ceiling() * 100.0
        );
        shipped_sets.push((
            device.name.clone(),
            pipeline
                .shipped_configs()
                .iter()
                .copied()
                .collect::<BTreeSet<usize>>(),
        ));
    }

    println!("\n=== cross-device comparison ===");
    for i in 0..shipped_sets.len() {
        for j in (i + 1)..shipped_sets.len() {
            let (na, sa) = &shipped_sets[i];
            let (nb, sb) = &shipped_sets[j];
            let shared = sa.intersection(sb).count();
            println!(
                "{na} vs {nb}: {shared}/{} shipped kernels shared",
                sa.len().max(sb.len())
            );
        }
    }
    println!(
        "\ndifferent hardware genuinely wants different kernels — and the same\n\
         pipeline produced each deployment without device-specific code."
    );
    Ok(())
}
