//! Generalisation beyond CNNs: tune a library for a transformer
//! (BERT-base) and compare the shipped kernel set against the
//! CNN-trained deployment — attention's square, shallow-K GEMMs want
//! different kernels than im2col's tall, deep-K ones, so a library
//! tuned only on CNN shapes leaves performance behind on transformers.
//!
//! Run with: `cargo run --release --example transformer_tuning`

use autokernel::core::evaluate::{achievable_score, selection_score};
use autokernel::core::{PerformanceDataset, PipelineConfig, TuningPipeline};
use autokernel::gemm::GemmShape;
use autokernel::sim::{DeviceType, Platform};
use autokernel::workloads::{bert_base, dataset::unique_gemms, paper_dataset};
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::standard();
    let device = platform.device_by_type(DeviceType::Gpu)?;

    // Transformer shapes: BERT-base at several sequence lengths.
    let mut bert_shapes: BTreeSet<GemmShape> = BTreeSet::new();
    for seq in [128usize, 256, 384, 512] {
        bert_shapes.extend(unique_gemms(&bert_base(seq), &[1]));
    }
    let bert_tagged: Vec<(GemmShape, String)> = bert_shapes
        .iter()
        .map(|&s| (s, "BERT".to_string()))
        .collect();
    println!(
        "BERT workload: {} unique GEMM shapes (seq 128..512)",
        bert_tagged.len()
    );

    // Pipeline A: tuned on the transformer shapes themselves.
    let bert_pipeline = TuningPipeline::run(&device, &bert_tagged, PipelineConfig::default())?;
    println!("\ntuned-on-BERT shipped kernels:");
    for cfg in bert_pipeline.shipped_kernel_configs() {
        println!("  {cfg}");
    }
    println!(
        "held-out: selector {:.1}% (ceiling {:.1}%)",
        bert_pipeline.test_score()? * 100.0,
        bert_pipeline.achievable_ceiling() * 100.0
    );

    // Pipeline B: the CNN deployment (paper dataset), evaluated on BERT.
    let cnn_tagged: Vec<(GemmShape, String)> = paper_dataset()
        .into_iter()
        .flat_map(|n| {
            n.shapes
                .into_iter()
                .map(move |s| (s, n.network.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    let cnn_pipeline = TuningPipeline::run(&device, &cnn_tagged, PipelineConfig::default())?;

    // Score both shipped sets against the BERT ground truth.
    let bert_ds = PerformanceDataset::collect(&device, &bert_tagged)?;
    let rows: Vec<usize> = (0..bert_ds.n_shapes()).collect();
    let bert_set = achievable_score(&bert_ds, &rows, bert_pipeline.shipped_configs());
    let cnn_set = achievable_score(&bert_ds, &rows, cnn_pipeline.shipped_configs());
    let cnn_selected: Vec<usize> = rows
        .iter()
        .map(|&i| cnn_pipeline.select(&bert_ds.shapes[i]).map(|c| c.index()))
        .collect::<Result<_, _>>()?;
    let cnn_sel_score = selection_score(&bert_ds, &rows, &cnn_selected);

    println!("\non the BERT shapes (all {} of them):", rows.len());
    println!(
        "  BERT-tuned kernel set, oracle:  {:.1}% of optimal",
        bert_set * 100.0
    );
    println!(
        "  CNN-tuned kernel set,  oracle:  {:.1}% of optimal",
        cnn_set * 100.0
    );
    println!(
        "  CNN-tuned selector, end-to-end: {:.1}% of optimal",
        cnn_sel_score * 100.0
    );

    let overlap: BTreeSet<usize> = bert_pipeline
        .shipped_configs()
        .iter()
        .copied()
        .collect::<BTreeSet<_>>()
        .intersection(&cnn_pipeline.shipped_configs().iter().copied().collect())
        .copied()
        .collect();
    println!(
        "\nshipped-set overlap CNN vs BERT: {}/{} kernels — retuning per workload domain matters.",
        overlap.len(),
        bert_pipeline.shipped_configs().len()
    );
    Ok(())
}
