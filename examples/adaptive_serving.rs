//! Adaptive serving demo: closed-loop kernel selection surviving a
//! device swap the offline model never saw.
//!
//! A pipeline trains on the AMD R9 Nano, then serves a recurring
//! traffic mix through an adaptive [`ResilientExecutor`] — the online
//! layer mirrors the offline classifier bit-for-bit while measuring
//! every launch. Mid-stream, the queue is swapped for an edge DSP whose
//! performance profile (and launch limits) disagree with the training
//! substrate: most shipped configurations cannot launch there at all.
//! The Page–Hinkley drift detector trips within a few launches, the
//! decision-cache generation is bumped, and the per-cluster UCB bandit
//! re-learns the best shipped configuration per shape from live
//! completion times, recovering near-oracle throughput.
//!
//! Run with: `cargo run --release --example adaptive_serving`

use autokernel::core::resilient::ResilientPolicy;
use autokernel::core::{OnlineConfig, PerformanceDataset, PipelineConfig, TuningPipeline};
use autokernel::gemm::{model, GemmShape, KernelConfig};
use autokernel::sim::{Buffer, DeviceSpec, Queue};
use std::sync::Arc;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Simulated duration of `config_index` on `shape` for `queue`'s
/// device, or `None` when the device rejects the launch.
fn priced(queue: &Queue, shape: &GemmShape, config_index: usize) -> Option<f64> {
    let cfg = KernelConfig::from_index(config_index)?;
    let range = model::launch_range(&cfg, shape).ok()?;
    let profile = model::profile(&cfg, shape, queue.device());
    queue
        .price(&profile, &range, model::noise_seed(&cfg, shape))
        .ok()
        .map(|(_, duration)| duration)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nano = Arc::new(DeviceSpec::amd_r9_nano());
    let edge = Arc::new(DeviceSpec::edge_dsp());
    // The full paper dataset: its shipped set spans the work-group
    // spectrum, so a slice of it survives even the edge DSP's launch
    // limits — exactly the regime where online adaptation has room to
    // work (a shipped set with nothing launchable can only degrade to
    // the reference GEMM).
    println!("training the pipeline on {} (paper dataset) ...", nano.name);
    let dataset = PerformanceDataset::collect_paper_dataset(&nano)?;
    let pipeline = TuningPipeline::from_dataset(dataset, PipelineConfig::default())?;
    println!(
        "shipped configs: {:?}",
        pipeline
            .shipped_kernel_configs()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
    );

    // The recurring traffic an inference server would see.
    let working_set: Vec<GemmShape> = [
        (12544, 27, 64),
        (3136, 144, 24),
        (784, 1152, 128),
        (196, 2304, 256),
        (49, 960, 160),
        (1, 4096, 1000),
        (8, 25088, 4096),
        (64, 64, 64),
        (512, 512, 512),
        (1024, 1024, 1024),
        (32, 4096, 4096),
        (6272, 576, 128),
        (2, 2048, 1000),
        (128, 128, 1000),
        (25088, 576, 128),
        (3136, 576, 192),
    ]
    .iter()
    .map(|&(m, k, n)| GemmShape::new(m, k, n))
    .collect();
    let buffers: Vec<_> = working_set
        .iter()
        .map(|&s| {
            (
                Buffer::new_filled(s.m * s.k, 0.0f32),
                Buffer::new_filled(s.k * s.n, 0.0f32),
                Buffer::new_filled(s.m * s.n, 0.0f32),
            )
        })
        .collect();

    // Phase 1 — serve on the training device through the adaptive
    // executor. The online layer is in its Mirror stage: picks are
    // bit-identical to the offline classifier while every completion
    // time builds the drift detector's baselines.
    let policy = ResilientPolicy::default();
    let (nano_exec, online) = pipeline.adaptive_executor(
        Queue::timing_only(Arc::clone(&nano)),
        policy.clone(),
        OnlineConfig::default(),
    )?;
    const NANO_EPOCHS: usize = 2;
    let mut mirrored = 0usize;
    for _ in 0..NANO_EPOCHS {
        for (shape, (a, b, c)) in working_set.iter().zip(&buffers) {
            let report = nano_exec.launch(*shape, a, b, c)?;
            if report.config == Some(pipeline.select(shape)?) {
                mirrored += 1;
            }
        }
    }
    let stats = online.stats();
    println!(
        "\nphase 1 ({} launches on {}): {mirrored} bit-identical to the classifier, \
         adaptive={}, {} drift samples (statistic {:.2})",
        NANO_EPOCHS * working_set.len(),
        nano.name,
        stats.adaptive,
        stats.ph_samples,
        stats.ph_statistic,
    );

    // Phase 2 — the swap: same online layer, same serving cache, but
    // the queue now belongs to an edge DSP. Shipped configurations the
    // DSP rejects outright feed the drift detector as structural
    // failures; completions arrive 10-100x slower than their baselines.
    let edge_exec = pipeline
        .resilient_executor(Queue::timing_only(Arc::clone(&edge)), policy)
        .with_online(Arc::clone(&online));
    let generation_before = pipeline.serving().cache().generation();

    // The post-swap shipped-set oracle, for scoring recovery.
    let probe = Queue::timing_only(Arc::clone(&edge));
    let oracle: Vec<f64> = working_set
        .iter()
        .map(|shape| {
            pipeline
                .shipped_configs()
                .iter()
                .filter_map(|&cfg| priced(&probe, shape, cfg))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let launchable = pipeline
        .shipped_configs()
        .iter()
        .filter(|&&cfg| {
            working_set
                .iter()
                .all(|shape| priced(&probe, shape, cfg).is_some())
        })
        .count();
    println!(
        "\nswapping the queue to {}: {launchable}/{} shipped configs still launch there",
        edge.name,
        pipeline.shipped_configs().len()
    );

    const EDGE_EPOCHS: usize = 8;
    let mut tripped_at = None;
    for epoch in 0..EDGE_EPOCHS {
        let mut ratios = Vec::new();
        for (i, (shape, (a, b, c))) in working_set.iter().zip(&buffers).enumerate() {
            let report = edge_exec.launch(*shape, a, b, c)?;
            assert!(!report.event.is_failed());
            ratios.push(oracle[i] / report.event.duration_s());
            if tripped_at.is_none() && online.is_adaptive() {
                tripped_at = Some(epoch * working_set.len() + i + 1);
            }
        }
        println!(
            "  epoch {epoch}: geomean {:.3} of the shipped-set oracle{}",
            geomean(&ratios),
            if epoch == 0 {
                tripped_at
                    .map(|n| format!(" (drift tripped after {n} launches)"))
                    .unwrap_or_default()
            } else {
                String::new()
            }
        );
    }

    let t = pipeline.telemetry();
    let stats = online.stats();
    println!(
        "\nonline layer after the swap: adaptive={}, {} shape-clusters, \
         cache generation {} -> {}",
        stats.adaptive,
        stats.clusters,
        generation_before,
        pipeline.serving().cache().generation(),
    );
    println!(
        "telemetry: {} drift events, {} adaptive picks, {} reward updates \
         ({} launches, {} absorbed failures)",
        t.drift_events(),
        t.adaptive_picks(),
        t.reward_updates(),
        t.resilient_launches(),
        t.launch_failures(),
    );

    assert!(online.is_adaptive(), "the swap must be detected as drift");
    assert!(t.drift_events() >= 1);
    println!("\nadaptive_serving OK");
    Ok(())
}
